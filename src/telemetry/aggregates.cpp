#include "telemetry/aggregates.hpp"

#include <algorithm>
#include <stdexcept>

namespace tl::telemetry {

// --- TemporalAggregator ------------------------------------------------------

TemporalAggregator::TemporalAggregator(std::size_t n_sectors, int days)
    : n_sectors_(n_sectors), days_(days) {
  const std::size_t bins = static_cast<std::size_t>(days) * 48u;
  for (auto& v : ho_) v.assign(bins, 0);
  for (auto& v : hof_) v.assign(bins, 0);
  for (auto& v : seen_) v.resize(bins);
}

void TemporalAggregator::consume(const HandoverRecord& record) {
  const int day = record.day();
  if (day < 0 || day >= days_) return;
  const std::size_t bin = index(day, util::SimCalendar::half_hour_bin(record.timestamp));
  const auto area = static_cast<std::size_t>(record.area);
  ++ho_[area][bin];
  if (!record.success) ++hof_[area][bin];
  auto& bitmap = seen_[area][bin];
  if (bitmap.empty()) bitmap.assign(n_sectors_, false);
  if (record.source_sector < n_sectors_) bitmap[record.source_sector] = true;
}

const std::vector<std::uint64_t>& TemporalAggregator::ho_series(geo::AreaType area) const {
  return ho_[static_cast<std::size_t>(area)];
}

const std::vector<std::uint64_t>& TemporalAggregator::hof_series(geo::AreaType area) const {
  return hof_[static_cast<std::size_t>(area)];
}

std::vector<std::uint32_t> TemporalAggregator::active_sector_series(
    geo::AreaType area) const {
  const auto& bins = seen_[static_cast<std::size_t>(area)];
  std::vector<std::uint32_t> out(bins.size(), 0);
  for (std::size_t b = 0; b < bins.size(); ++b) {
    out[b] = static_cast<std::uint32_t>(std::count(bins[b].begin(), bins[b].end(), true));
  }
  return out;
}

std::array<std::vector<double>, 2> TemporalAggregator::hourly_hof_per_active_sector()
    const {
  std::array<std::vector<double>, 2> out;
  for (std::size_t area = 0; area < 2; ++area) {
    const auto active = active_sector_series(static_cast<geo::AreaType>(area));
    std::vector<double> hof_by_hour(24, 0.0);
    std::vector<double> active_by_hour(24, 0.0);
    for (int day = 0; day < days_; ++day) {
      for (int bin = 0; bin < 48; ++bin) {
        const std::size_t idx = index(day, bin);
        hof_by_hour[bin / 2] += static_cast<double>(hof_[area][idx]);
        active_by_hour[bin / 2] += static_cast<double>(active[idx]);
      }
    }
    out[area].resize(24);
    for (int h = 0; h < 24; ++h) {
      out[area][h] =
          active_by_hour[h] > 0.0 ? hof_by_hour[h] / (active_by_hour[h] / 2.0) : 0.0;
    }
  }
  return out;
}

// --- SectorDayAggregator -----------------------------------------------------

SectorDayAggregator::SectorDayAggregator(std::size_t n_sectors, int days)
    : n_sectors_(n_sectors), days_(days) {
  cells_.assign(n_sectors_ * static_cast<std::size_t>(days) * 3u, {});
}

void SectorDayAggregator::consume(const HandoverRecord& record) {
  const int day = record.day();
  if (day < 0 || day >= days_ || record.source_sector >= n_sectors_) return;
  Cell& cell =
      cells_[index(record.source_sector, day, static_cast<int>(record.target_rat))];
  ++cell.hos;
  ++total_hos_;
  if (!record.success) {
    ++cell.hofs;
    ++total_hofs_;
  }
}

std::vector<SectorDayAggregator::Observation> SectorDayAggregator::observations() const {
  std::vector<Observation> out;
  for (std::size_t sector = 0; sector < n_sectors_; ++sector) {
    for (int day = 0; day < days_; ++day) {
      for (int rat = 0; rat < 3; ++rat) {
        const Cell& cell = cells_[index(static_cast<topology::SectorId>(sector), day, rat)];
        if (cell.hos == 0) continue;
        Observation obs;
        obs.sector = static_cast<topology::SectorId>(sector);
        obs.day = day;
        obs.target = static_cast<topology::ObservedRat>(rat);
        obs.handovers = cell.hos;
        obs.failures = cell.hofs;
        obs.hof_rate_pct =
            100.0 * static_cast<double>(cell.hofs) / static_cast<double>(cell.hos);
        out.push_back(obs);
      }
    }
  }
  return out;
}

// --- DistrictAggregator ------------------------------------------------------

DistrictAggregator::DistrictAggregator(std::size_t n_districts,
                                       std::size_t n_manufacturers)
    : n_manufacturers_(n_manufacturers) {
  districts_.resize(n_districts);
  makers_.resize(n_districts * n_manufacturers);
}

void DistrictAggregator::consume(const HandoverRecord& record) {
  if (record.district >= districts_.size()) return;
  DistrictTally& d = districts_[record.district];
  ++d.handovers;
  ++d.by_target[static_cast<std::size_t>(record.target_rat)];
  ++d.hos_by_type[static_cast<std::size_t>(record.device_type)];
  if (!record.success) {
    ++d.failures;
    ++d.hofs_by_type[static_cast<std::size_t>(record.device_type)];
  }
  if (record.manufacturer < n_manufacturers_) {
    MakerTally& m =
        makers_[record.district * n_manufacturers_ + record.manufacturer];
    ++m.handovers;
    if (!record.success) ++m.failures;
  }
}

const DistrictAggregator::MakerTally& DistrictAggregator::maker(
    geo::DistrictId d, devices::ManufacturerId m) const {
  return makers_.at(static_cast<std::size_t>(d) * n_manufacturers_ + m);
}

// --- CauseAggregator ---------------------------------------------------------

std::size_t CauseAggregator::bucket_of(corenet::CauseId cause) noexcept {
  return corenet::is_dominant_cause(cause) ? static_cast<std::size_t>(cause - 1) : 8u;
}

const char* CauseAggregator::bucket_label(std::size_t bucket) noexcept {
  static const char* const kLabels[kBuckets] = {
      "Cause #1 (source canceled)",   "Cause #2 (interfering Initial UE)",
      "Cause #3 (invalid target ID)", "Cause #4 (target overload)",
      "Cause #5 (MME-detected)",      "Cause #6 (SRVCC not subscribed)",
      "Cause #7 (PS-to-CS failure)",  "Cause #8 (relocation timeout)",
      "long tail (vendor sub-causes)"};
  return bucket < kBuckets ? kLabels[bucket] : "?";
}

CauseAggregator::CauseAggregator(int days, std::size_t n_manufacturers,
                                 std::size_t duration_samples)
    : days_(days), n_manufacturers_(n_manufacturers) {
  per_day_bucket_.assign(static_cast<std::size_t>(days) * kBuckets, 0);
  per_day_total_.assign(static_cast<std::size_t>(days), 0);
  by_maker_area_.assign(n_manufacturers * 2 * kBuckets, 0);
  durations_.reserve(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    durations_.emplace_back(duration_samples, 0xd0b0 + b);
  }
}

void CauseAggregator::consume(const HandoverRecord& record) {
  if (record.success) return;
  const int day = record.day();
  if (day < 0 || day >= days_) return;
  const std::size_t bucket = bucket_of(record.cause);
  ++total_failures_;
  ++bucket_[bucket];
  ++per_day_bucket_[static_cast<std::size_t>(day) * kBuckets + bucket];
  ++per_day_total_[static_cast<std::size_t>(day)];
  ++by_target_[static_cast<std::size_t>(record.target_rat)];
  ++by_area_[static_cast<std::size_t>(record.area)][bucket];
  ++by_device_[static_cast<std::size_t>(record.device_type)][bucket];
  if (record.manufacturer < n_manufacturers_) {
    ++by_maker_area_[(static_cast<std::size_t>(record.manufacturer) * 2u +
                      static_cast<std::size_t>(record.area)) *
                         kBuckets +
                     bucket];
  }
  durations_[bucket].add(record.duration_ms);
  seen_causes_.push_back(record.cause);
}

std::size_t CauseAggregator::distinct_causes() const {
  std::vector<std::uint32_t> ids = seen_causes_;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

CauseAggregator::DailyShare CauseAggregator::daily_share(std::size_t bucket) const {
  if (bucket >= kBuckets) throw std::out_of_range{"CauseAggregator::daily_share"};
  DailyShare s;
  s.min = 1.0;
  s.max = 0.0;
  double sum = 0.0;
  int counted = 0;
  for (int day = 0; day < days_; ++day) {
    const std::uint64_t total = per_day_total_[static_cast<std::size_t>(day)];
    if (total == 0) continue;
    const double share =
        static_cast<double>(per_day_bucket_[static_cast<std::size_t>(day) * kBuckets +
                                            bucket]) /
        static_cast<double>(total);
    s.min = std::min(s.min, share);
    s.max = std::max(s.max, share);
    sum += share;
    ++counted;
  }
  if (counted == 0) return {};
  s.mean = sum / counted;
  return s;
}

std::uint64_t CauseAggregator::by_maker_area(devices::ManufacturerId maker,
                                             geo::AreaType area,
                                             std::size_t bucket) const {
  return by_maker_area_.at((static_cast<std::size_t>(maker) * 2u +
                            static_cast<std::size_t>(area)) *
                               kBuckets +
                           bucket);
}

// --- TypeMixAggregator -------------------------------------------------------

TypeMixAggregator::TypeMixAggregator(int days) : days_(days) {
  cells_.assign(static_cast<std::size_t>(days) * 9u, 0);
  day_totals_.assign(static_cast<std::size_t>(days), 0);
}

void TypeMixAggregator::consume(const HandoverRecord& record) {
  const int day = record.day();
  if (day < 0 || day >= days_) return;
  ++cells_[index(day, static_cast<std::size_t>(record.device_type),
                 static_cast<std::size_t>(record.target_rat))];
  ++day_totals_[static_cast<std::size_t>(day)];
  ++total_;
}

std::uint64_t TypeMixAggregator::count(devices::DeviceType type,
                                       topology::ObservedRat target) const {
  std::uint64_t sum = 0;
  for (int day = 0; day < days_; ++day) {
    sum += cells_[index(day, static_cast<std::size_t>(type),
                        static_cast<std::size_t>(target))];
  }
  return sum;
}

TypeMixAggregator::Share TypeMixAggregator::daily_share(
    devices::DeviceType type, topology::ObservedRat target) const {
  Share s;
  s.min = 1.0;
  s.max = 0.0;
  double sum = 0.0;
  int counted = 0;
  for (int day = 0; day < days_; ++day) {
    const std::uint64_t total = day_totals_[static_cast<std::size_t>(day)];
    if (total == 0) continue;
    const double share = static_cast<double>(cells_[index(
                             day, static_cast<std::size_t>(type),
                             static_cast<std::size_t>(target))]) /
                         static_cast<double>(total);
    s.min = std::min(s.min, share);
    s.max = std::max(s.max, share);
    sum += share;
    ++counted;
  }
  if (counted == 0) return {};
  s.mean = sum / counted;
  return s;
}

// --- DurationAggregator ------------------------------------------------------

DurationAggregator::DurationAggregator(std::size_t samples_per_class)
    : reservoirs_{util::ReservoirSample{samples_per_class, 0xd1},
                  util::ReservoirSample{samples_per_class, 0xd2},
                  util::ReservoirSample{samples_per_class, 0xd3}} {}

void DurationAggregator::consume(const HandoverRecord& record) {
  if (!record.success) return;
  reservoirs_[static_cast<std::size_t>(record.target_rat)].add(record.duration_ms);
}

// --- IncidentWindowAggregator ------------------------------------------------

IncidentWindowAggregator::IncidentWindowAggregator(util::TimestampMs window_start,
                                                   util::TimestampMs window_end,
                                                   std::size_t n_sectors)
    : start_(window_start),
      end_(window_end),
      n_sectors_(n_sectors),
      by_source_(n_sectors * 3),
      by_target_(n_sectors * 3, 0) {}

void IncidentWindowAggregator::consume(const HandoverRecord& record) {
  const auto phase = static_cast<std::size_t>(phase_of(record.timestamp));
  auto& nat = national_[phase];
  ++nat.handovers;
  if (!record.success) ++nat.failures;
  if (record.source_sector < n_sectors_) {
    auto& src = by_source_[static_cast<std::size_t>(record.source_sector) * 3 + phase];
    ++src.handovers;
    if (!record.success) ++src.failures;
  }
  if (record.target_sector < n_sectors_) {
    ++by_target_[static_cast<std::size_t>(record.target_sector) * 3 + phase];
  }
}

const IncidentWindowAggregator::Tally& IncidentWindowAggregator::sourced_at(
    topology::SectorId sector, Phase phase) const {
  return by_source_.at(static_cast<std::size_t>(sector) * 3 +
                       static_cast<std::size_t>(phase));
}

std::uint64_t IncidentWindowAggregator::targeting(topology::SectorId sector,
                                                  Phase phase) const {
  return by_target_.at(static_cast<std::size_t>(sector) * 3 +
                       static_cast<std::size_t>(phase));
}

}  // namespace tl::telemetry
