#pragma once

// Full-retention signaling dataset: stores every record (small scales,
// tests, exports) and offers the filtered views the analyses start from.

#include <functional>
#include <iosfwd>
#include <span>
#include <vector>

#include "telemetry/sinks.hpp"

namespace tl::telemetry {

class SignalingDataset : public RecordSink {
 public:
  void consume(const HandoverRecord& record) override { records_.push_back(record); }

  std::span<const HandoverRecord> records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  void reserve(std::size_t n) { records_.reserve(n); }
  void clear() noexcept { records_.clear(); }

  /// Records matching a predicate.
  std::vector<HandoverRecord> filter(
      const std::function<bool(const HandoverRecord&)>& predicate) const;

  /// Success-only durations toward a target RAT class (Fig. 8 input).
  std::vector<double> success_durations_ms(topology::ObservedRat target) const;

  /// CSV export with the paper's six variables plus the join columns.
  void export_csv(std::ostream& os) const;

  std::uint64_t failure_count() const noexcept;

 private:
  std::vector<HandoverRecord> records_;
};

}  // namespace tl::telemetry
