#include "telemetry/signaling_dataset.hpp"

#include <ostream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"
#include "util/hash.hpp"

namespace tl::telemetry {

std::vector<HandoverRecord> SignalingDataset::filter(
    const std::function<bool(const HandoverRecord&)>& predicate) const {
  std::vector<HandoverRecord> out;
  for (const auto& r : records_) {
    if (predicate(r)) out.push_back(r);
  }
  return out;
}

std::vector<double> SignalingDataset::success_durations_ms(
    topology::ObservedRat target) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (r.success && r.target_rat == target) out.push_back(r.duration_ms);
  }
  return out;
}

std::uint64_t SignalingDataset::failure_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : records_) n += r.success ? 0 : 1;
  return n;
}

void SignalingDataset::export_csv(std::ostream& os) const {
  util::CsvWriter writer{os};
  writer.write_row({"timestamp_ms", "result", "duration_ms", "cause", "anon_user",
                    "source_sector", "target_sector", "source_rat", "target_rat",
                    "device_type", "district", "area", "region", "vendor"});
  for (const auto& r : records_) {
    writer.write_row({std::to_string(r.timestamp), r.success ? "success" : "failure",
                      std::to_string(r.duration_ms), std::to_string(r.cause),
                      util::format_anon_id(r.anon_user_id),
                      std::to_string(r.source_sector), std::to_string(r.target_sector),
                      std::string{topology::to_string(r.source_rat)},
                      std::string{topology::to_string(r.target_rat)},
                      std::string{devices::to_string(r.device_type)},
                      std::to_string(r.district), std::string{geo::to_string(r.area)},
                      std::string{geo::to_string(r.region)},
                      std::string{topology::to_string(r.vendor)}});
  }
  // Flush so buffered failures (ENOSPC on the final block) surface here,
  // not as a silently truncated export.
  os.flush();
  if (!os) {
    throw std::runtime_error{"SignalingDataset::export_csv: stream write failed"};
  }
}

}  // namespace tl::telemetry
