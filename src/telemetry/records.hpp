#pragma once

// The mobility-management signaling record (§3.1).
//
// Six captured variables, as in the paper: (i) millisecond timestamp,
// (ii) HO result, (iii) HO duration, (iv) failure cause code, (v) anonymized
// user id, (vi) source/target sectors with their RATs. The remaining fields
// are the joins the paper performs against the topology dataset, the GSMA
// catalog, and the census — precomputed here so aggregators are O(1).

#include <cstdint>

#include "core_network/failure_causes.hpp"
#include "devices/device_type.hpp"
#include "devices/population.hpp"
#include "geo/district.hpp"
#include "geo/region.hpp"
#include "topology/rat.hpp"
#include "topology/sector.hpp"
#include "topology/vendor.hpp"
#include "util/sim_time.hpp"

namespace tl::telemetry {

struct HandoverRecord {
  // --- the six captured variables ---
  util::TimestampMs timestamp = 0;
  bool success = true;
  float duration_ms = 0.0f;
  corenet::CauseId cause = corenet::kCauseNone;
  std::uint64_t anon_user_id = 0;
  topology::SectorId source_sector = 0;
  topology::SectorId target_sector = 0;
  topology::ObservedRat source_rat = topology::ObservedRat::kG45Nsa;
  topology::ObservedRat target_rat = topology::ObservedRat::kG45Nsa;

  // --- joined context (topology dataset, devices catalog, census) ---
  devices::DeviceType device_type = devices::DeviceType::kSmartphone;
  devices::ManufacturerId manufacturer = 0;
  geo::PostcodeId postcode = 0;
  geo::DistrictId district = 0;
  geo::AreaType area = geo::AreaType::kUrban;
  geo::Region region = geo::Region::kCapital;
  topology::Vendor vendor = topology::Vendor::kV1;
  bool srvcc = false;
  /// 0 = first try of this HO opportunity; k >= 1 = k-th recovery re-attempt
  /// after a failure (RRC re-establishment toward the same target). Lets
  /// retry chains and failure-driven ping-pong be measured downstream.
  std::uint8_t attempt = 0;

  bool is_vertical() const noexcept {
    return target_rat != topology::ObservedRat::kG45Nsa;
  }
  int day() const noexcept { return util::SimCalendar::day_index(timestamp); }
};

/// Defect classes a malformed record can carry; the degradation-tolerant
/// pipeline (ValidatingSink) quarantines instead of aborting on these.
enum class RecordDefect : std::uint8_t {
  kNone = 0,
  kBadSectorId,       // invalid sentinel or out of deployment range
  kSelfHandover,      // source == target
  kBadDuration,       // negative, NaN or implausibly large duration
  kBadTimestamp,      // negative timestamp
  kTimeRegression,    // arrived for a day the pipeline already closed
  kCauseMismatch,     // success with a cause, or failure without one
};
inline constexpr std::size_t kRecordDefectKinds = 7;

const char* to_string(RecordDefect defect) noexcept;

/// Bounds a record must respect to enter the pipeline. `sector_count == 0`
/// disables the range check (sector universe unknown).
struct ValidationLimits {
  std::uint32_t sector_count = 0;
  float max_duration_ms = 600'000.0f;  // 10 minutes: far beyond any real HO
};

/// First defect found in `record` (kNone if clean). `completed_day` is the
/// last day the stream has closed via on_day_end, -1 before the first.
RecordDefect inspect(const HandoverRecord& record, const ValidationLimits& limits,
                     int completed_day) noexcept;

/// Per-UE-day mobility/performance summary (§3.3 metrics + HOF exposure);
/// feeds Figs. 10 and 13.
struct UeDayMetrics {
  devices::UeId ue = 0;
  int day = 0;
  std::uint32_t handovers = 0;
  std::uint32_t failures = 0;
  std::uint32_t distinct_sectors = 0;
  float radius_of_gyration_km = 0.0f;
  devices::DeviceType device_type = devices::DeviceType::kSmartphone;

  double hof_rate() const noexcept {
    return handovers ? static_cast<double>(failures) / static_cast<double>(handovers)
                     : 0.0;
  }
};

}  // namespace tl::telemetry
