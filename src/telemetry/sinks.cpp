#include "telemetry/sinks.hpp"

namespace tl::telemetry {

ValidatingSink::ValidatingSink(RecordSink& inner, ValidationLimits limits,
                               std::size_t quarantine_capacity)
    : inner_(inner), limits_(limits), quarantine_capacity_(quarantine_capacity) {
  quarantine_.reserve(quarantine_capacity_);
}

void ValidatingSink::consume(const HandoverRecord& record) {
  const RecordDefect defect = inspect(record, limits_, completed_day_);
  if (defect == RecordDefect::kNone) {
    ++forwarded_;
    inner_.consume(record);
    return;
  }
  ++quarantined_;
  ++counts_[static_cast<std::size_t>(defect)];
  if (quarantine_.size() < quarantine_capacity_) quarantine_.push_back(record);
}

void ValidatingSink::on_day_end(int day) {
  if (day > completed_day_) completed_day_ = day;
  inner_.on_day_end(day);
}

}  // namespace tl::telemetry
