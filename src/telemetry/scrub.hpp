#pragma once

// Storage integrity for the record WAL: detection, redundancy, repair.
//
// PR 2's recovery defends the TAIL of the log — torn bytes a crash left
// past the last commit marker. This module defends the BODY: latent media
// corruption (bit rot, bad sectors) inside segments that were committed,
// fsynced, and possibly sealed months ago. Three layers:
//
//  - Detection (LogScrubber): walks every segment of a chain (and its
//    mirror) frame by frame, re-verifying each CRC32C, the marker
//    bookkeeping against the chain's cumulative totals, and the chain's
//    structural invariants (contiguous indices, commit-aligned seals).
//    Produces a ScrubReport of latent defects by class and byte range.
//    Unlike recovery's scan it does not stop at the first bad byte — every
//    segment is audited so repair can plan the whole chain at once.
//
//  - Redundancy + repair (LogIntegrity): with RecordLog's opt-in
//    mirror_directory every sealed segment has a CRC-verified replica.
//    check_and_repair() restores a damaged sealed primary from a clean
//    mirror (tmp + fsync + rename, read back and CRC-verified) and a
//    missing/damaged mirror from a clean primary, journaling a RepairEvent
//    per action. The active tail segment belongs to the writer and is
//    never touched.
//
//  - Certified degradation: when BOTH copies of a sealed segment are
//    damaged, the affected segment run is quarantined instead of aborting
//    the study: the report carries the exact day range and dropped-record
//    count (anchored on the neighbouring segments' marker totals), and
//    RecordLog::follow() skips quarantined segments, resuming delivery at
//    the next clean day with TailState::kQuarantined — the storage
//    counterpart of the governor's exact -> degraded ladder.
//
// The audit trusts nothing it did not just hash: a "clean" verdict means
// every byte of the segment participated in a CRC that checked out and the
// marker arithmetic is consistent with the chain.

#include <cstdint>
#include <string>
#include <vector>

#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "telemetry/record_log.hpp"

namespace tl::telemetry {

/// What kind of latent damage an audit found.
enum class DefectClass : std::uint8_t {
  kBadSegmentHeader = 0,  ///< magic/index/CRC of the 16-byte header invalid
  kBadFrameCrc,           ///< complete frame whose payload CRC32C mismatches
  kTruncatedFrame,        ///< frame header/payload runs past end of file
  kBadFrameStructure,     ///< foreign frame type or malformed marker payload
  kMarkerMismatch,        ///< CRC-valid marker whose counts disagree
  kNoSealMarker,          ///< sealed segment not ending at a day marker
  kChainGap,              ///< expected segment file missing entirely
  kMirrorMissing,         ///< sealed primary has no mirror replica
  kMirrorDiverged,        ///< mirror bytes differ from a clean primary
};

const char* to_string(DefectClass defect) noexcept;

/// One latent defect, pinned to a byte range of one copy of one segment.
struct SegmentDefect {
  std::uint32_t segment = 0;
  bool in_mirror = false;  ///< defect found in the mirror copy, not primary
  DefectClass defect = DefectClass::kBadFrameCrc;
  std::uint64_t offset = 0;  ///< first suspect byte
  std::uint64_t length = 0;  ///< suspect range (0 = unknown / whole rest)
  std::string detail;
};

/// Full audit of one segment file: the valid frame prefix, marker anchors
/// for chain accounting, and the first defect (if any). A sealed segment is
/// `clean` only when every byte is CRC-covered and it ends at a day marker.
struct SegmentAudit {
  std::uint32_t index = 0;
  bool exists = false;
  std::uint64_t size = 0;
  bool header_valid = false;
  std::uint64_t valid_bytes = 0;  ///< CRC-verified prefix (header + frames)
  std::uint64_t frames = 0;
  std::uint64_t records = 0;
  std::uint64_t markers = 0;
  int first_day = -1;                ///< day of the first marker
  std::uint64_t first_in_day = 0;    ///< records of that first day
  std::uint64_t first_total = 0;     ///< cumulative total at the first marker
  int last_day = -1;                 ///< day of the last marker
  std::uint64_t last_total = 0;      ///< cumulative total at the last marker
  bool ends_at_marker = false;       ///< valid prefix ends exactly at a marker
  bool has_defect = false;
  DefectClass defect = DefectClass::kBadFrameCrc;
  std::uint64_t defect_offset = 0;
  std::uint64_t defect_length = 0;
  /// Sealed-segment cleanliness: fully verified and commit-terminated.
  bool clean_sealed() const noexcept {
    return exists && header_valid && !has_defect && valid_bytes == size &&
           ends_at_marker && markers > 0;
  }
};

/// Re-reads one segment file and verifies every byte it can. `expect_index`
/// is the index the chain position demands (header must agree).
SegmentAudit audit_segment(io::FileSystem& fs, const std::string& path,
                           std::uint32_t expect_index);

struct ScrubOptions {
  std::string directory;
  /// Mirror chain to audit against (empty: primary-only scrub; mirror
  /// defect classes are then never reported).
  std::string mirror_directory;
};

/// What a detection pass saw. `defects` covers sealed segments (both
/// copies); the active tail segment is the writer's property, so its
/// irregularities surface as `tail_state` (pending/torn), not defects.
struct ScrubReport {
  std::uint64_t segments_scanned = 0;        ///< primary files examined
  std::uint64_t sealed_segments = 0;         ///< of those, sealed (non-tail)
  std::uint64_t mirror_segments_scanned = 0;
  std::uint64_t frames_scanned = 0;
  std::uint64_t records_scanned = 0;
  std::uint64_t markers_scanned = 0;
  std::uint64_t bytes_scanned = 0;
  int first_day = -1;  ///< oldest committed day still in the chain
  int last_day = -1;   ///< newest committed day
  TailState tail_state = TailState::kClean;
  std::uint64_t tail_suspect_bytes = 0;  ///< unverifiable tail-segment bytes
  std::vector<SegmentDefect> defects;
  bool clean() const noexcept { return defects.empty(); }

  /// Per-segment audits backing the summary (parallel chains, ascending
  /// index; mirror_audits empty without a mirror). Exposed so repair and
  /// tests can reuse the pass instead of re-reading the chain.
  std::vector<SegmentAudit> audits;
  std::vector<SegmentAudit> mirror_audits;
  std::uint32_t base = 0;        ///< first chain index audited
  std::uint32_t tail_index = 0;  ///< active tail segment index
  bool has_tail = false;         ///< false when the chain is empty
};

/// Detection only: audits the chain (and mirror) without modifying a byte.
class LogScrubber {
 public:
  /// `fs` is borrowed and must outlive the scrubber.
  LogScrubber(io::FileSystem& fs, ScrubOptions options);
  ScrubReport run();

 private:
  io::FileSystem& fs_;
  ScrubOptions options_;
};

/// What check_and_repair did about one segment.
enum class RepairAction : std::uint8_t {
  kPrimaryRestored = 0,  ///< damaged primary rewritten from a clean mirror
  kMirrorRestored,       ///< missing/damaged mirror rewritten from primary
  kQuarantined,          ///< both copies damaged: certified loss
};

const char* to_string(RepairAction action) noexcept;

/// Journal entry for one repair/quarantine decision.
struct RepairEvent {
  RepairAction action = RepairAction::kPrimaryRestored;
  std::uint32_t segment = 0;
  /// Day range affected. For restores: the days the segment carries. For a
  /// quarantine: the certified lost range (-1 = unknown end of an unbounded
  /// side, accounting then reports exact=false).
  int first_day = -1;
  int last_day = -1;
  std::uint64_t records_dropped = 0;  ///< quarantine only; exact iff `exact`
  bool exact = true;
  std::uint32_t crc32c = 0;  ///< whole-file CRC of the restored copy
  std::string detail;
};

/// Result of a scrub + repair pass.
struct IntegrityReport {
  ScrubReport scrub;                 ///< the detection pass repair acted on
  std::vector<RepairEvent> events;   ///< one per restored/quarantined segment
  /// Segments damaged in both copies, ascending — feed to FollowOptions so
  /// readers skip them with certified accounting.
  std::vector<std::uint32_t> quarantined_segments;
  std::uint64_t records_lost = 0;  ///< total across quarantine runs
  bool accounting_exact = true;    ///< false when an anchor marker is gone
  int quarantine_first_day = -1;
  int quarantine_last_day = -1;
  bool repaired_any() const noexcept {
    for (const RepairEvent& e : events) {
      if (e.action != RepairAction::kQuarantined) return true;
    }
    return false;
  }
  bool fully_repaired() const noexcept { return quarantined_segments.empty(); }
};

/// Scrub-then-repair over the sealed segments of a chain. The tail segment
/// is never modified (the writer's recovery owns it); quarantined segments
/// are left on disk untouched — certified skipping is the reader's job, and
/// a later operator restore (from backup) heals them retroactively.
class LogIntegrity {
 public:
  /// `fs` is borrowed and must outlive this object.
  LogIntegrity(io::FileSystem& fs, ScrubOptions options);
  IntegrityReport check_and_repair();

 private:
  void resolve_obs();

  io::FileSystem& fs_;
  ScrubOptions options_;

  std::uint64_t obs_epoch_ = UINT64_MAX;
  obs::Counter obs_scrub_runs_;
  obs::Counter obs_scrub_segments_;
  obs::Counter obs_scrub_bytes_;
  obs::Counter obs_scrub_defects_;
  obs::Counter obs_repair_primary_;
  obs::Counter obs_repair_mirror_;
  obs::Counter obs_repair_quarantined_;
  obs::Counter obs_repair_records_lost_;
};

/// CRC32C over the whole file at `path` (byte-identity oracle helper).
std::uint32_t file_crc32c(io::FileSystem& fs, const std::string& path);

/// Atomically replaces `dst` with the bytes of `src`: copy into dst.tmp,
/// fsync, rename, then read `dst` back and verify its CRC32C equals the
/// source bytes' — a repair that did not stick must not report success.
/// Returns that CRC.
std::uint32_t copy_file_atomic(io::FileSystem& fs, const std::string& src,
                               const std::string& dst);

}  // namespace tl::telemetry
