#pragma once

// Control-plane events beyond handovers (§3.1): the mobility-management
// signaling dataset also records service requests, attach/detach, paging
// and Tracking Area Updates. The study focuses on HOs; these events round
// out the dataset so downstream users get the full control-plane view an
// MME sees.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "devices/device_type.hpp"
#include "geo/district.hpp"
#include "util/sim_time.hpp"

namespace tl::telemetry {

enum class ControlEventType : std::uint8_t {
  kAttach = 0,
  kDetach,
  kServiceRequest,
  kPaging,
  kTrackingAreaUpdate,
};

inline constexpr std::size_t kControlEventTypes = 5;

constexpr std::string_view to_string(ControlEventType t) noexcept {
  switch (t) {
    case ControlEventType::kAttach: return "Attach";
    case ControlEventType::kDetach: return "Detach";
    case ControlEventType::kServiceRequest: return "Service Request";
    case ControlEventType::kPaging: return "Paging";
    case ControlEventType::kTrackingAreaUpdate: return "Tracking Area Update";
  }
  return "?";
}

struct ControlPlaneEvent {
  ControlEventType type = ControlEventType::kServiceRequest;
  util::TimestampMs timestamp = 0;
  std::uint64_t anon_user_id = 0;
  devices::DeviceType device_type = devices::DeviceType::kSmartphone;
  geo::AreaType area = geo::AreaType::kUrban;
};

class ControlEventSink {
 public:
  virtual ~ControlEventSink() = default;
  virtual void consume(const ControlPlaneEvent& event) = 0;
};

/// Counting sink: events per type, per type-and-hour.
class ControlEventCounter : public ControlEventSink {
 public:
  void consume(const ControlPlaneEvent& event) override;

  std::uint64_t count(ControlEventType type) const noexcept {
    return totals_[static_cast<std::size_t>(type)];
  }
  std::uint64_t total() const noexcept;
  /// Events of `type` in hour-of-day `hour`.
  std::uint64_t count_at(ControlEventType type, int hour) const;

 private:
  std::array<std::uint64_t, kControlEventTypes> totals_{};
  std::array<std::array<std::uint64_t, 24>, kControlEventTypes> by_hour_{};
};

}  // namespace tl::telemetry
