#include "telemetry/pingpong.hpp"

namespace tl::telemetry {

void PingPongDetector::consume(const HandoverRecord& record) {
  if (!record.success) return;  // PP is defined over executed HOs
  ++total_;
  LastHo& last = last_by_ue_[record.anon_user_id];
  const bool returns_to_previous_source =
      last.target == record.source_sector && last.source == record.target_sector;
  if (returns_to_previous_source && last.time > 0 &&
      record.timestamp - last.time <= window_ms_) {
    ++ping_pongs_;
    ++by_area_[static_cast<std::size_t>(record.area)];
    wasted_ms_ += record.duration_ms;
  }
  last.source = record.source_sector;
  last.target = record.target_sector;
  last.time = record.timestamp;
}

}  // namespace tl::telemetry
