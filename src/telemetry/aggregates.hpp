#pragma once

// Streaming aggregators over the record stream. Each one reduces exactly
// what one family of figures/tables needs, in bounded memory.

#include <array>
#include <cstdint>
#include <vector>

#include "geo/country.hpp"
#include "telemetry/sinks.hpp"
#include "topology/deployment.hpp"
#include "util/accumulator.hpp"

namespace tl::telemetry {

/// Fig. 7 / Fig. 12: HO and HOF counts per 30-minute bin and area class,
/// plus the count of distinct HO-handling ("active") sectors per bin.
class TemporalAggregator : public RecordSink {
 public:
  TemporalAggregator(std::size_t n_sectors, int days);

  void consume(const HandoverRecord& record) override;

  /// Handover counts per 30-min bin over the whole study, per area class.
  const std::vector<std::uint64_t>& ho_series(geo::AreaType area) const;
  const std::vector<std::uint64_t>& hof_series(geo::AreaType area) const;
  /// Number of distinct sectors that handled >= 1 HO in each bin (computed
  /// from the per-bin membership bitmaps; records may arrive in any order).
  std::vector<std::uint32_t> active_sector_series(geo::AreaType area) const;

  /// HOF counts aggregated per hour of day [0,24), normalized by the mean
  /// number of active sectors of that class in the hour (Fig. 12's y-axis).
  std::array<std::vector<double>, 2> hourly_hof_per_active_sector() const;

  int days() const noexcept { return days_; }

 private:
  std::size_t index(int day, int bin) const noexcept {
    return static_cast<std::size_t>(day) * 48u + static_cast<std::size_t>(bin);
  }

  std::size_t n_sectors_;
  int days_;
  std::array<std::vector<std::uint64_t>, 2> ho_;   // [area][day*48+bin]
  std::array<std::vector<std::uint64_t>, 2> hof_;  // [area][day*48+bin]
  // Per-bin sector-membership bitmaps, allocated lazily on first record.
  std::array<std::vector<std::vector<bool>>, 2> seen_;
};

/// §6.3 / Tables 3-9: the sector-day modeling dataset. One observation per
/// (source sector, day, target RAT class) with its HO and HOF counts.
class SectorDayAggregator : public RecordSink {
 public:
  SectorDayAggregator(std::size_t n_sectors, int days);

  void consume(const HandoverRecord& record) override;

  struct Observation {
    topology::SectorId sector = 0;
    int day = 0;
    topology::ObservedRat target = topology::ObservedRat::kG45Nsa;
    std::uint32_t handovers = 0;
    std::uint32_t failures = 0;
    /// HOF rate in percent, as the paper's dataset records it.
    double hof_rate_pct = 0.0;
  };

  /// Materializes all non-empty observations.
  std::vector<Observation> observations() const;

  std::uint64_t total_handovers() const noexcept { return total_hos_; }
  std::uint64_t total_failures() const noexcept { return total_hofs_; }

 private:
  struct Cell {
    std::uint32_t hos = 0;
    std::uint32_t hofs = 0;
  };
  std::size_t index(topology::SectorId sector, int day, int rat) const noexcept {
    return (static_cast<std::size_t>(sector) * static_cast<std::size_t>(days_) +
            static_cast<std::size_t>(day)) *
               3u +
           static_cast<std::size_t>(rat);
  }

  std::size_t n_sectors_;
  int days_;
  std::vector<Cell> cells_;
  std::uint64_t total_hos_ = 0;
  std::uint64_t total_hofs_ = 0;
};

/// Figs. 6, 9, 11: district-level tallies, including per-manufacturer HO
/// and HOF counts for the normalized district-level comparison.
class DistrictAggregator : public RecordSink {
 public:
  DistrictAggregator(std::size_t n_districts, std::size_t n_manufacturers);

  void consume(const HandoverRecord& record) override;

  struct DistrictTally {
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    std::array<std::uint64_t, 3> by_target{};  // indexed by ObservedRat
    // Per device type, for the within-type manufacturer normalization of
    // Fig. 11 (comparing an IoT module against smartphones would conflate
    // observability with behaviour).
    std::array<std::uint64_t, 3> hos_by_type{};
    std::array<std::uint64_t, 3> hofs_by_type{};
  };
  const DistrictTally& district(geo::DistrictId d) const { return districts_.at(d); }
  std::size_t district_count() const noexcept { return districts_.size(); }

  struct MakerTally {
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
  };
  const MakerTally& maker(geo::DistrictId d, devices::ManufacturerId m) const;

 private:
  std::size_t n_manufacturers_;
  std::vector<DistrictTally> districts_;
  std::vector<MakerTally> makers_;  // [district * n_manufacturers + maker]
};

/// Figs. 14, 15: failure-cause tallies — per cause, per day (min/max bands),
/// per target RAT, and cross-tabulated by area / device type / manufacturer.
class CauseAggregator : public RecordSink {
 public:
  CauseAggregator(int days, std::size_t n_manufacturers, std::size_t duration_samples = 20'000);

  void consume(const HandoverRecord& record) override;

  /// Bucket 0..7 = dominant causes #1..#8; bucket 8 = the vendor tail.
  static constexpr std::size_t kBuckets = 9;
  static std::size_t bucket_of(corenet::CauseId cause) noexcept;
  static const char* bucket_label(std::size_t bucket) noexcept;

  std::uint64_t total_failures() const noexcept { return total_failures_; }
  std::array<std::uint64_t, kBuckets> totals_by_bucket() const noexcept { return bucket_; }
  /// Distinct cause ids observed (the paper's "1k+ causes").
  std::size_t distinct_causes() const;

  /// Daily share of a bucket among the day's failures; min/mean/max across days.
  struct DailyShare {
    double min = 0, mean = 0, max = 0;
  };
  DailyShare daily_share(std::size_t bucket) const;

  std::array<std::uint64_t, 3> failures_by_target() const noexcept { return by_target_; }
  /// [area][bucket] failure counts.
  const std::array<std::array<std::uint64_t, kBuckets>, 2>& by_area() const noexcept {
    return by_area_;
  }
  /// [device type][bucket] failure counts.
  const std::array<std::array<std::uint64_t, kBuckets>, 3>& by_device() const noexcept {
    return by_device_;
  }
  /// Failure counts for (manufacturer, area, bucket) — Fig. 15c.
  std::uint64_t by_maker_area(devices::ManufacturerId maker, geo::AreaType area,
                              std::size_t bucket) const;

  /// Reservoir of signaling times per bucket (Fig. 14b).
  const util::ReservoirSample& durations(std::size_t bucket) const {
    return durations_.at(bucket);
  }

 private:
  int days_;
  std::size_t n_manufacturers_;
  std::uint64_t total_failures_ = 0;
  std::array<std::uint64_t, kBuckets> bucket_{};
  std::vector<std::uint64_t> per_day_bucket_;  // [day * kBuckets + bucket]
  std::vector<std::uint64_t> per_day_total_;   // [day]
  std::array<std::uint64_t, 3> by_target_{};
  std::array<std::array<std::uint64_t, kBuckets>, 2> by_area_{};
  std::array<std::array<std::uint64_t, kBuckets>, 3> by_device_{};
  std::vector<std::uint64_t> by_maker_area_;  // [(maker*2+area)*kBuckets+bucket]
  std::vector<std::uint32_t> seen_causes_;    // sorted-unique lazily
  std::vector<util::ReservoirSample> durations_;
};

/// Fig. 8: signaling-time reservoirs per target RAT class (successes only).
class DurationAggregator : public RecordSink {
 public:
  explicit DurationAggregator(std::size_t samples_per_class = 50'000);

  void consume(const HandoverRecord& record) override;

  const util::ReservoirSample& durations(topology::ObservedRat target) const {
    return reservoirs_[static_cast<std::size_t>(target)];
  }

 private:
  std::array<util::ReservoirSample, 3> reservoirs_;
};

/// Table 2: HO counts per (device type, target RAT class), with per-day
/// breakdown for the +/- bands.
class TypeMixAggregator : public RecordSink {
 public:
  explicit TypeMixAggregator(int days);

  void consume(const HandoverRecord& record) override;

  std::uint64_t count(devices::DeviceType type, topology::ObservedRat target) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Share of (type, target) among all HOs: mean / min / max across days.
  struct Share {
    double mean = 0, min = 0, max = 0;
  };
  Share daily_share(devices::DeviceType type, topology::ObservedRat target) const;

 private:
  std::size_t index(int day, std::size_t type, std::size_t target) const noexcept {
    return (static_cast<std::size_t>(day) * 3u + type) * 3u + target;
  }
  int days_;
  std::vector<std::uint64_t> cells_;  // [day][type][target]
  std::vector<std::uint64_t> day_totals_;
  std::uint64_t total_ = 0;
};

/// Incident forensics: HO/HOF tallies split into before/during/after an
/// incident window, nationally and per source/target sector. Feeds the
/// incident-drill example and the fault-injection tests — the Table 6-style
/// question "did the incident move this sector's failure rate, and only
/// inside the window?".
class IncidentWindowAggregator : public RecordSink {
 public:
  enum class Phase : std::uint8_t { kBefore = 0, kDuring, kAfter };

  IncidentWindowAggregator(util::TimestampMs window_start, util::TimestampMs window_end,
                           std::size_t n_sectors);

  void consume(const HandoverRecord& record) override;

  struct Tally {
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    double hof_rate() const noexcept {
      return handovers ? static_cast<double>(failures) / static_cast<double>(handovers)
                       : 0.0;
    }
  };

  Phase phase_of(util::TimestampMs t) const noexcept {
    if (t < start_) return Phase::kBefore;
    return t < end_ ? Phase::kDuring : Phase::kAfter;
  }

  /// National tallies per phase.
  const Tally& national(Phase phase) const noexcept {
    return national_[static_cast<std::size_t>(phase)];
  }
  /// Tallies of HOs *sourced at* `sector`, per phase.
  const Tally& sourced_at(topology::SectorId sector, Phase phase) const;
  /// Count of HOs *targeting* `sector`, per phase (availability check: an
  /// outage should zero the during-window column).
  std::uint64_t targeting(topology::SectorId sector, Phase phase) const;

 private:
  util::TimestampMs start_;
  util::TimestampMs end_;
  std::size_t n_sectors_;
  std::array<Tally, 3> national_{};
  std::vector<Tally> by_source_;          // [sector * 3 + phase]
  std::vector<std::uint64_t> by_target_;  // [sector * 3 + phase]
};

/// Figs. 10, 13: retains every UE-day metrics row.
class UeDayStore : public MetricsSink {
 public:
  void consume(const UeDayMetrics& metrics) override { rows_.push_back(metrics); }
  const std::vector<UeDayMetrics>& rows() const noexcept { return rows_; }

 private:
  std::vector<UeDayMetrics> rows_;
};

}  // namespace tl::telemetry
