#pragma once

// The four stock handover policies and their factory. See policy.hpp for
// the determinism contract each implementation honors.

#include <memory>

#include "policy/config.hpp"
#include "policy/policy.hpp"

namespace tl::policy {

/// Replays the calibrated pipeline's decision sequence exactly: the same
/// selector draw, the same locate() draws, the same hold checks in the same
/// order — proven byte-identical (records, WAL bytes, checkpoints) to the
/// pre-policy-engine stream at every thread count and across kill/resume.
class CalibratedBaselinePolicy final : public HandoverPolicy {
 public:
  const char* name() const noexcept override { return "calibrated-baseline"; }
  HoDecision decide(const PolicyEnv& env, const HoOpportunity& opp, UeDayState& state,
                    util::Rng& rng) const override;
};

/// Rxlev-style thresholds: hand over only under A2 (serving below floor) or
/// A3 (neighbor clears hysteresis) pressure, toward the strongest
/// non-penalized neighbor; a failed HO arms a per-neighbor penalty timer.
class SignalThresholdPolicy final : public HandoverPolicy {
 public:
  explicit SignalThresholdPolicy(SignalThresholdParams params = {}) noexcept
      : params_(params) {}
  const char* name() const noexcept override { return "signal-threshold"; }
  HoDecision decide(const PolicyEnv& env, const HoOpportunity& opp, UeDayState& state,
                    util::Rng& rng) const override;
  void on_outcome(const PolicyEnv& env, const HoOpportunity& opp,
                  const HoDecision& decision, bool success,
                  UeDayState& state) const override;
  const SignalThresholdParams& params() const noexcept { return params_; }

 private:
  SignalThresholdParams params_;
};

/// Sector-load-aware target selection: replays the calibrated decision
/// sequence, then diverts any handover whose target is hotter than the
/// overload guard to the least-loaded candidate of the same RAT class.
/// Directly attacks the target-overload failure cause (#4) behind the rural
/// peak-hour HOF spike while leaving the HO opportunity stream untouched
/// (common random numbers with the baseline arm).
class LoadBalancingPolicy final : public HandoverPolicy {
 public:
  explicit LoadBalancingPolicy(LoadBalancingParams params = {}) noexcept
      : params_(params) {}
  const char* name() const noexcept override { return "load-balancing"; }
  HoDecision decide(const PolicyEnv& env, const HoOpportunity& opp, UeDayState& state,
                    util::Rng& rng) const override;
  const LoadBalancingParams& params() const noexcept { return params_; }

 private:
  LoadBalancingParams params_;
};

/// Suppresses →3G/→2G fallback whenever a 4G/5G cell (serving included)
/// still clears a minimum RSRP margin — the "don't leave 4G early" rule the
/// paper's ≈166%/≈915% →3G/→2G HOF inflation argues for.
class RatPreferencePolicy final : public HandoverPolicy {
 public:
  explicit RatPreferencePolicy(RatPreferenceParams params = {}) noexcept
      : params_(params) {}
  const char* name() const noexcept override { return "rat-preference"; }
  HoDecision decide(const PolicyEnv& env, const HoOpportunity& opp, UeDayState& state,
                    util::Rng& rng) const override;
  const RatPreferenceParams& params() const noexcept { return params_; }

 private:
  RatPreferenceParams params_;
};

/// Instantiates the policy named by `config.kind` with its parameter block.
std::unique_ptr<HandoverPolicy> make_policy(const PolicyConfig& config);

}  // namespace tl::policy
