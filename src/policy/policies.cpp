#include "policy/policies.hpp"

#include <stdexcept>

#include "policy/measurements.hpp"

namespace tl::policy {

using topology::ObservedRat;
using topology::kInvalidSector;

HoDecision CalibratedBaselinePolicy::decide(const PolicyEnv& env, const HoOpportunity& opp,
                                            UeDayState& state, util::Rng& rng) const {
  obs_decisions_.inc();
  // The legacy sequence, draw for draw: one uniform in the selector, then
  // pick_sector draws per candidate site inside locate().
  const ran::TargetDecision td =
      env.selector->decide(*opp.ue, opp.postcode, opp.voice_active, rng);
  const topology::SectorId target =
      env.locator->locate(opp.position, td.target_rat, *opp.ue, opp.day, opp.bin, rng);

  HoDecision d;
  d.target_rat = td.target_rat;
  d.srvcc = td.srvcc;
  if (!ran_guards_allow(env, opp, state, target)) {
    obs_holds_.inc();
    return d;
  }
  d.handover = true;
  d.target = target;
  obs_handovers_.inc();
  return d;
}

HoDecision SignalThresholdPolicy::decide(const PolicyEnv& env, const HoOpportunity& opp,
                                         UeDayState& state, util::Rng& rng) const {
  obs_decisions_.inc();
  // Shared opportunity marginals (common random numbers with the baseline):
  // the fallback/SRVCC pressure draw stays on the main stream.
  const ran::TargetDecision td =
      env.selector->decide(*opp.ue, opp.postcode, opp.voice_active, rng);

  HoDecision d;
  d.target_rat = td.target_rat;
  d.srvcc = td.srvcc;

  auto& cand = state.scratch_sectors;
  env.locator->candidates(opp.position, td.target_rat, *opp.ue, opp.day, opp.bin,
                          params_.candidate_sites, cand);
  if (cand.empty()) {
    obs_holds_.inc();
    return d;
  }

  // Strongest non-serving, non-penalized neighbor. Strict > keeps RSRP ties
  // on the nearer site (candidate order is proximity-stable).
  bool penalty_blocked = false;
  topology::SectorId best = kInvalidSector;
  double best_rsrp = -1e9;
  for (const topology::SectorId sid : cand) {
    if (sid == opp.serving) continue;
    if (state.penalized(sid, opp.time)) {
      penalty_blocked = true;
      continue;
    }
    const double rsrp = measured_rsrp_dbm(env, opp, sid);
    if (rsrp > best_rsrp) {
      best_rsrp = rsrp;
      best = sid;
    }
  }
  if (best == kInvalidSector) {
    if (penalty_blocked) obs_penalty_holds_.inc();
    obs_holds_.inc();
    return d;
  }

  const double serving_rsrp = measured_rsrp_dbm(env, opp, opp.serving);
  const bool a2 = serving_rsrp < params_.serving_floor_dbm;
  const bool a3 = best_rsrp >= serving_rsrp + params_.hysteresis_db;
  if ((!a2 && !a3) || !ran_guards_allow(env, opp, state, best)) {
    obs_holds_.inc();
    return d;
  }
  d.handover = true;
  d.target = best;
  obs_handovers_.inc();
  return d;
}

void SignalThresholdPolicy::on_outcome(const PolicyEnv&, const HoOpportunity& opp,
                                       const HoDecision& decision, bool success,
                                       UeDayState& state) const {
  if (!success && decision.handover) {
    state.add_penalty(decision.target, opp.time + params_.penalty_ms);
  }
}

HoDecision LoadBalancingPolicy::decide(const PolicyEnv& env, const HoOpportunity& opp,
                                       UeDayState& state, util::Rng& rng) const {
  obs_decisions_.inc();
  // The calibrated decision sequence, draw for draw — the HO opportunity
  // stream is the baseline's (common random numbers), only the target of an
  // overload-bound handover changes.
  const ran::TargetDecision td =
      env.selector->decide(*opp.ue, opp.postcode, opp.voice_active, rng);
  topology::SectorId target =
      env.locator->locate(opp.position, td.target_rat, *opp.ue, opp.day, opp.bin, rng);

  HoDecision d;
  d.target_rat = td.target_rat;
  d.srvcc = td.srvcc;
  if (!ran_guards_allow(env, opp, state, target)) {
    obs_holds_.inc();
    return d;
  }

  // Divert: when the chosen target is hotter than the guard, re-target the
  // least-loaded candidate of the same class (strict < keeps utilization
  // ties on the nearer site; serving and guard-blocked sectors excluded).
  const double target_util =
      env.load->utilization(env.deployment->sector(target), opp.day, opp.bin);
  if (target_util > params_.overload_guard) {
    auto& cand = state.scratch_sectors;
    env.locator->candidates(opp.position, td.target_rat, *opp.ue, opp.day, opp.bin,
                            params_.candidate_sites, cand);
    topology::SectorId best = kInvalidSector;
    double best_util = target_util;
    for (const topology::SectorId sid : cand) {
      if (sid == target || !ran_guards_allow(env, opp, state, sid)) continue;
      const double u =
          env.load->utilization(env.deployment->sector(sid), opp.day, opp.bin);
      if (u < best_util) {
        best_util = u;
        best = sid;
      }
    }
    if (best != kInvalidSector) {
      target = best;
      obs_overrides_.inc();
    }
  }

  d.handover = true;
  d.target = target;
  obs_handovers_.inc();
  return d;
}

HoDecision RatPreferencePolicy::decide(const PolicyEnv& env, const HoOpportunity& opp,
                                       UeDayState& state, util::Rng& rng) const {
  obs_decisions_.inc();
  const ran::TargetDecision td =
      env.selector->decide(*opp.ue, opp.postcode, opp.voice_active, rng);

  HoDecision d;
  d.target_rat = td.target_rat;
  d.srvcc = td.srvcc;

  // The 4G/5G neighborhood, measured: used both to veto fallback and as the
  // horizontal target pool.
  auto& g4 = state.scratch_sectors_4g;
  env.locator->candidates(opp.position, ObservedRat::kG45Nsa, *opp.ue, opp.day, opp.bin,
                          params_.candidate_sites, g4);
  topology::SectorId best4 = kInvalidSector;
  double best4_rsrp = -1e9;
  for (const topology::SectorId sid : g4) {
    if (sid == opp.serving) continue;
    const double rsrp = measured_rsrp_dbm(env, opp, sid);
    if (rsrp > best4_rsrp) {
      best4_rsrp = rsrp;
      best4 = sid;
    }
  }

  if (td.target_rat != ObservedRat::kG45Nsa) {
    const double serving_rsrp = measured_rsrp_dbm(env, opp, opp.serving);
    const bool serving_ok = serving_rsrp >= params_.min_rsrp_4g_dbm;
    const bool neighbor_ok = best4 != kInvalidSector && best4_rsrp >= params_.min_rsrp_4g_dbm;
    if (serving_ok || neighbor_ok) {
      // Suppress the fallback: 4G/5G still works here. Prefer the stronger
      // 4G cell; staying on serving is a hold (no record, like any hold).
      obs_fallback_suppressed_.inc();
      obs_overrides_.inc();
      if (neighbor_ok && best4_rsrp > serving_rsrp &&
          ran_guards_allow(env, opp, state, best4)) {
        d.handover = true;
        d.target = best4;
        d.target_rat = ObservedRat::kG45Nsa;
        d.srvcc = false;
        obs_handovers_.inc();
        return d;
      }
      obs_holds_.inc();
      return d;
    }
    // Fallback proceeds: strongest cell of the fallback class.
    auto& fc = state.scratch_sectors;
    env.locator->candidates(opp.position, td.target_rat, *opp.ue, opp.day, opp.bin,
                            params_.candidate_sites, fc);
    topology::SectorId best_fb = kInvalidSector;
    double best_fb_rsrp = -1e9;
    for (const topology::SectorId sid : fc) {
      const double rsrp = measured_rsrp_dbm(env, opp, sid);
      if (rsrp > best_fb_rsrp) {
        best_fb_rsrp = rsrp;
        best_fb = sid;
      }
    }
    if (!ran_guards_allow(env, opp, state, best_fb)) {
      obs_holds_.inc();
      return d;
    }
    d.handover = true;
    d.target = best_fb;
    obs_handovers_.inc();
    return d;
  }

  // Horizontal: strongest 4G/5G neighbor, if it beats nothing it is a hold.
  if (best4 == kInvalidSector || !ran_guards_allow(env, opp, state, best4)) {
    obs_holds_.inc();
    return d;
  }
  d.handover = true;
  d.target = best4;
  obs_handovers_.inc();
  return d;
}

std::unique_ptr<HandoverPolicy> make_policy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kCalibratedBaseline:
      return std::make_unique<CalibratedBaselinePolicy>();
    case PolicyKind::kSignalThreshold:
      return std::make_unique<SignalThresholdPolicy>(config.signal);
    case PolicyKind::kLoadBalancing:
      return std::make_unique<LoadBalancingPolicy>(config.load);
    case PolicyKind::kRatPreference:
      return std::make_unique<RatPreferencePolicy>(config.rat);
  }
  throw std::invalid_argument{"unknown policy kind"};
}

}  // namespace tl::policy
