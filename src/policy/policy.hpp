#pragma once

// Pluggable handover decision engine (ROADMAP open item 3).
//
// The simulator's hot loop hands every handover opportunity — one mobility
// trace event of one UE-day — to a HandoverPolicy and executes whatever it
// decides through the unchanged EPC state machine, so the paper's measured
// marginals (→3G carrying 75% of HOFs, the rural peak-hour spike, ...) can
// be *explained* by swapping the decision rule instead of only replayed.
//
// Determinism contract, in order of strictness:
//  - CalibratedBaselinePolicy replays the legacy decision sequence with the
//    simulator's own per-UE-day RNG stream: the record stream, WAL bytes and
//    checkpoints are byte-identical to the pre-policy-engine pipeline at any
//    thread count and across kill/resume.
//  - Every other policy keeps its stochastic needs on a policy-private
//    stream derived per (seed, ue, day) (UeDayState::rng) and limits main-
//    stream draws to the shared opportunity marginals (TargetSelector::
//    decide), so arms of an A/B experiment face common random numbers and
//    each policy's output is a pure function of (config, seed).
//  - ALL mutable policy state lives in UeDayState, created fresh per UE-day:
//    policies are shared const across worker threads, and cross-day state
//    would break the day-as-independent-replay-unit contract that sharding,
//    checkpoints and kill/resume depend on. Checkpoint formats are therefore
//    unchanged under every policy.

#include <array>
#include <cstdint>
#include <vector>

#include "devices/population.hpp"
#include "geo/district.hpp"
#include "obs/metrics.hpp"
#include "ran/coverage.hpp"
#include "ran/load.hpp"
#include "ran/sector_locator.hpp"
#include "ran/target_selection.hpp"
#include "topology/deployment.hpp"
#include "util/geo_point.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl::policy {

/// The world a policy may consult, borrowed from the simulator. Everything
/// is const: policies observe, the simulator executes.
struct PolicyEnv {
  const topology::Deployment* deployment = nullptr;
  const ran::CoverageMap* coverage = nullptr;
  const ran::TargetSelector* selector = nullptr;
  const ran::SectorLocator* locator = nullptr;
  const ran::LoadModel* load = nullptr;
  /// Study master seed; policy-private streams derive from it.
  std::uint64_t seed = 0;
  /// RAN-level knobs the baseline replicates exactly (StudyConfig mirrors).
  bool suppress_ping_pong = false;
  std::int64_t ping_pong_window_ms = 5'000;
};

/// One handover opportunity.
struct HoOpportunity {
  const devices::Ue* ue = nullptr;
  topology::SectorId serving = topology::kInvalidSector;
  util::GeoPoint position{};
  /// Postcode of the site nearest the event (the selector's coverage key).
  geo::PostcodeId postcode = 0;
  util::TimestampMs time = 0;
  int day = 0;
  int bin = 0;  ///< half-hour bin within the day
  bool voice_active = false;
};

/// What the policy decided for the opportunity. handover == false means the
/// UE holds on its serving sector (no record is emitted — exactly the legacy
/// `continue` cases). When handover == true, `target` is a valid sector
/// different from serving and `target_rat`/`srvcc` feed the HO attempt.
struct HoDecision {
  bool handover = false;
  topology::SectorId target = topology::kInvalidSector;
  topology::ObservedRat target_rat = topology::ObservedRat::kG45Nsa;
  bool srvcc = false;
};

/// Per-UE-day policy state. The simulator owns one per simulate_ue_day call
/// and maintains the common RAN-level fields (previous serving, barring);
/// policies keep *all* private mutable state here too — see the determinism
/// contract above.
struct UeDayState {
  // Ping-pong suppression state: the sector the UE most recently left.
  topology::SectorId previous_serving = topology::kInvalidSector;
  util::TimestampMs last_ho_time = 0;
  // Recovery state: a target whose retry chain was exhausted is temporarily
  // barred (conn-establishment-failure-control style).
  topology::SectorId barred_sector = topology::kInvalidSector;
  util::TimestampMs barred_until = 0;

  /// Policy-private deterministic stream, derived per (seed, ue, day) in
  /// HandoverPolicy::begin_ue_day. Never entangled with the simulator's
  /// main per-UE-day stream.
  util::Rng rng{0};

  /// Per-neighbor penalty timers (SignalThresholdPolicy): a failed HO bars
  /// the neighbor for a while. Fixed-size ring — the oldest entry is
  /// recycled — so state stays O(1) per UE-day.
  struct Penalty {
    topology::SectorId sector = topology::kInvalidSector;
    util::TimestampMs until = 0;
  };
  static constexpr std::size_t kPenaltySlots = 8;
  std::array<Penalty, kPenaltySlots> penalties{};
  std::size_t penalty_next = 0;

  /// Scratch buffers reused across the UE-day's opportunities so candidate
  /// enumeration never allocates in the steady state.
  std::vector<topology::SectorId> scratch_sectors;
  std::vector<topology::SectorId> scratch_sectors_4g;

  bool penalized(topology::SectorId sector, util::TimestampMs now) const noexcept {
    for (const Penalty& p : penalties) {
      if (p.sector == sector && now < p.until) return true;
    }
    return false;
  }
  void add_penalty(topology::SectorId sector, util::TimestampMs until) noexcept {
    penalties[penalty_next] = Penalty{sector, until};
    penalty_next = (penalty_next + 1) % kPenaltySlots;
  }
};

/// Base class. Implementations must be const-thread-safe: decide() runs
/// concurrently for disjoint UE-days on the parallel engine; the only
/// mutation points are UeDayState (exclusive to one UE-day) and the obs
/// counter handles (sharded relaxed atomics, safe by construction).
class HandoverPolicy {
 public:
  virtual ~HandoverPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Called at the top of every UE-day. The default resets `state` and
  /// derives the policy-private stream; overrides should call it first.
  virtual void begin_ue_day(const PolicyEnv& env, const devices::Ue& ue, int day,
                            UeDayState& state) const;

  /// The HO decision point. `rng` is the simulator's main per-UE-day stream
  /// (see the determinism contract above for who may draw from it).
  virtual HoDecision decide(const PolicyEnv& env, const HoOpportunity& opp,
                            UeDayState& state, util::Rng& rng) const = 0;

  /// Feedback after the attempt chain of an executed decision settles:
  /// `success` is the chain's final outcome. Default: no-op.
  virtual void on_outcome(const PolicyEnv& env, const HoOpportunity& opp,
                          const HoDecision& decision, bool success,
                          UeDayState& state) const;

  /// Epoch-checked tl_policy_* handle refresh; the simulator calls this at
  /// its own resolve_obs() boundary (single-threaded).
  void resolve_obs();

 protected:
  /// The RAN-level hold checks every policy applies to a prospective target
  /// (the legacy `continue` cases): invalid, no-op, ping-pong suppression,
  /// recovery barring. Returns true when the handover may proceed.
  bool ran_guards_allow(const PolicyEnv& env, const HoOpportunity& opp,
                        const UeDayState& state, topology::SectorId target) const noexcept {
    if (target == topology::kInvalidSector) return false;
    if (target == opp.serving) return false;
    if (env.suppress_ping_pong && target == state.previous_serving &&
        opp.time - state.last_ho_time <= env.ping_pong_window_ms) {
      return false;
    }
    if (target == state.barred_sector && opp.time < state.barred_until) return false;
    return true;
  }

  // Shared tl_policy_* families (registration is idempotent by name, so
  // every policy instance reports into the same counters).
  obs::Counter obs_decisions_;   ///< opportunities evaluated
  obs::Counter obs_handovers_;   ///< decisions that commanded a handover
  obs::Counter obs_holds_;       ///< decisions that held the UE on serving
  obs::Counter obs_overrides_;   ///< policy diverged from the proximity/fallback default
  obs::Counter obs_penalty_holds_;        ///< holds caused by a per-neighbor penalty timer
  obs::Counter obs_fallback_suppressed_;  ///< →3G/→2G decisions kept on 4G/5G

 private:
  std::uint64_t obs_epoch_ = UINT64_MAX;
};

}  // namespace tl::policy
