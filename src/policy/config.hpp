#pragma once

// Policy selection knobs, embedded in core::StudyConfig so a study names its
// handover policy the same way it names its scale or seed. Kept free of the
// policy class headers: everything below is plain data.

#include <cstdint>
#include <string_view>

namespace tl::policy {

enum class PolicyKind : std::uint8_t {
  /// Replays the calibrated pipeline's decision sequence byte-for-byte —
  /// the default, and the reference arm of every A/B experiment.
  kCalibratedBaseline = 0,
  kSignalThreshold,
  kLoadBalancing,
  kRatPreference,
};

constexpr std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kCalibratedBaseline: return "calibrated-baseline";
    case PolicyKind::kSignalThreshold: return "signal-threshold";
    case PolicyKind::kLoadBalancing: return "load-balancing";
    case PolicyKind::kRatPreference: return "rat-preference";
  }
  return "?";
}

/// SignalThresholdPolicy: rxlev-style serving floor + neighbor hysteresis +
/// per-neighbor penalty timers after a failed HO toward that neighbor.
struct SignalThresholdParams {
  /// A2-style serving floor: below this the UE is under handover pressure
  /// even when no neighbor clears the hysteresis margin.
  double serving_floor_dbm = -100.0;
  /// A3-style margin: a neighbor must measure this much above serving.
  double hysteresis_db = 2.0;
  /// Penalty timer armed per neighbor on a failed HO toward it.
  std::int64_t penalty_ms = 8'000;
  /// Nearest sites enumerated for the neighbor list.
  std::uint32_t candidate_sites = 3;
};

/// LoadBalancingPolicy: keeps the calibrated decision sequence (same HO
/// opportunities, same draws) but diverts the handover to the least-loaded
/// candidate sector whenever the chosen target's modeled utilization is
/// above the guard — mobility-load-balancing-style target re-selection that
/// attacks the target-overload failure cause (#4) head on.
struct LoadBalancingParams {
  /// Divert when the chosen target's utilization exceeds this. The failure
  /// model's overload ramp starts at 0.92; guarding below it re-targets
  /// before rejections begin.
  double overload_guard = 0.85;
  /// Nearest sites enumerated for the alternative-candidate set.
  std::uint32_t candidate_sites = 3;
};

/// RatPreferencePolicy: suppress a →3G/→2G fallback decision when a 4G/5G
/// neighbor still clears a minimum signal margin.
struct RatPreferenceParams {
  /// A 4G/5G neighbor at or above this RSRP overrides the fallback.
  double min_rsrp_4g_dbm = -112.0;
  /// Nearest sites enumerated when looking for the 4G/5G alternative.
  std::uint32_t candidate_sites = 3;
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kCalibratedBaseline;
  SignalThresholdParams signal;
  LoadBalancingParams load;
  RatPreferenceParams rat;
};

}  // namespace tl::policy
