#pragma once

// Synthetic UE measurement feed for measurement-driven policies.
//
// The calibrated pipeline never materializes per-cell RSRP — fallback and
// failure behaviour are driven by calibrated marginals — so policies that
// want A2/A3-style reasoning get a lazily synthesized measurement: coverage
// median for the sector's postcode, a distance-dependent decay toward the
// site, a stable keyed shadowing term, and an RSRQ proxy from the sector's
// modeled utilization. Everything is a pure function of (env.seed, sector,
// ue, day, bin): no RNG stream is consumed, so requesting a measurement can
// never perturb the simulation's draw sequence — the baseline policy simply
// never asks.

#include "policy/policy.hpp"
#include "ran/measurement.hpp"

namespace tl::policy {

/// RSRP (dBm) the opportunity's UE would report for `sector`.
double measured_rsrp_dbm(const PolicyEnv& env, const HoOpportunity& opp,
                         topology::SectorId sector) noexcept;

/// Full measurement entry (RSRP + utilization-derived RSRQ proxy).
ran::CellMeasurement measure_cell(const PolicyEnv& env, const HoOpportunity& opp,
                                  topology::SectorId sector) noexcept;

}  // namespace tl::policy
