#include "policy/measurements.hpp"

#include <cmath>

namespace tl::policy {

namespace {

/// Stable shadowing term in [-1, 1): keyed hash of (seed, sector, ue,
/// day/bin), no generator state.
double shadow_unit(std::uint64_t seed, topology::SectorId sector, devices::UeId ue,
                   int day, int bin) noexcept {
  const std::uint64_t slot =
      static_cast<std::uint64_t>(day) * 48u + static_cast<std::uint64_t>(bin);
  const std::uint64_t h = util::derive_seed(seed, 0x5bad0u, sector,
                                            static_cast<std::uint64_t>(ue) ^ (slot << 40));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return 2.0 * u - 1.0;
}

}  // namespace

double measured_rsrp_dbm(const PolicyEnv& env, const HoOpportunity& opp,
                         topology::SectorId sector) noexcept {
  const auto& s = env.deployment->sector(sector);
  const auto& site = env.deployment->site(s.site);
  const ran::CoverageProfile& profile = env.coverage->at(s.postcode);
  const double dist_km = util::distance_km(opp.position, site.location);
  // Coverage median at typical distance, log-distance decay past ~500 m,
  // ±4 dB stable shadowing.
  const double path = 28.0 * std::log10(1.0 + dist_km / 0.5);
  const double shadow =
      4.0 * shadow_unit(env.seed, sector, opp.ue->id, opp.day, opp.bin);
  return profile.median_rsrp_4g_dbm - path + shadow;
}

ran::CellMeasurement measure_cell(const PolicyEnv& env, const HoOpportunity& opp,
                                  topology::SectorId sector) noexcept {
  ran::CellMeasurement m;
  m.sector = sector;
  m.rsrp_dbm = measured_rsrp_dbm(env, opp, sector);
  // RSRQ proxy: interference rises with the sector's modeled utilization.
  const auto& s = env.deployment->sector(sector);
  m.rsrq_db = -10.0 - 8.0 * env.load->utilization(s, opp.day, opp.bin);
  return m;
}

}  // namespace tl::policy
