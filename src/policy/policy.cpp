#include "policy/policy.hpp"

namespace tl::policy {

void HandoverPolicy::begin_ue_day(const PolicyEnv& env, const devices::Ue& ue, int day,
                                  UeDayState& state) const {
  state.previous_serving = topology::kInvalidSector;
  state.last_ho_time = 0;
  state.barred_sector = topology::kInvalidSector;
  state.barred_until = 0;
  // Policy-private stream: per (seed, ue, day), so decisions stay a pure
  // function of the study seed regardless of sharding or resume point.
  state.rng = util::Rng::derive(env.seed, 0xb011c9u, ue.id, static_cast<std::uint64_t>(day));
  state.penalties = {};
  state.penalty_next = 0;
  // Keep scratch capacity across UE-days of the same shard; just empty it.
  state.scratch_sectors.clear();
  state.scratch_sectors_4g.clear();
}

void HandoverPolicy::on_outcome(const PolicyEnv&, const HoOpportunity&, const HoDecision&,
                                bool, UeDayState&) const {}

void HandoverPolicy::resolve_obs() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_decisions_ = obs::Counter{};
    obs_handovers_ = obs::Counter{};
    obs_holds_ = obs::Counter{};
    obs_overrides_ = obs::Counter{};
    obs_penalty_holds_ = obs::Counter{};
    obs_fallback_suppressed_ = obs::Counter{};
    return;
  }
  obs_decisions_ = reg->counter("tl_policy_decisions_total",
                                "Handover opportunities evaluated by the policy engine");
  obs_handovers_ = reg->counter("tl_policy_handovers_total",
                                "Policy decisions that commanded a handover");
  obs_holds_ = reg->counter("tl_policy_holds_total",
                            "Policy decisions that held the UE on its serving sector");
  obs_overrides_ = reg->counter(
      "tl_policy_overrides_total",
      "Decisions where the policy diverged from the calibrated default target");
  obs_penalty_holds_ = reg->counter("tl_policy_penalty_holds_total",
                                    "Holds caused by a per-neighbor penalty timer");
  obs_fallback_suppressed_ = reg->counter(
      "tl_policy_fallback_suppressed_total",
      "Fallback (→3G/→2G) decisions kept on a 4G/5G neighbor instead");
}

}  // namespace tl::policy
