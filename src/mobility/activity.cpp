#include "mobility/activity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::mobility {

using util::kBinsPerDay30Min;

DayShape day_shape(int day) noexcept {
  switch (util::SimCalendar::day_of_week_for_day(day)) {
    case util::DayOfWeek::kSaturday: return DayShape::kSaturday;
    case util::DayOfWeek::kSunday: return DayShape::kSunday;
    default: return DayShape::kWeekday;
  }
}

namespace {

std::array<double, kBinsPerDay30Min> weekday_curve() {
  std::array<double, kBinsPerDay30Min> w{};
  // Night trough [00:00, 06:00): minimum at 02:00-03:30 (bins 4-7).
  for (int b = 0; b < 12; ++b) {
    if (b < 4) {
      w[b] = 0.30 - 0.045 * b;  // 0.30 -> 0.165
    } else if (b <= 7) {
      w[b] = 0.12;
    } else {
      w[b] = 0.12 + 0.02 * (b - 7);  // drift up to 0.20
    }
  }
  // Sharp x3 commute ramp [06:00, 08:00): 0.33 -> 1.0 peak at bin 16.
  for (int b = 12; b < 16; ++b) w[b] = 0.33 + (1.00 - 0.33) * (b - 12) / 4.0;
  w[16] = 1.00;  // peak 08:00-08:30
  // Working hours: mild midday plateau, second peak at 15:00-15:30 (bin 30).
  for (int b = 17; b < 30; ++b) {
    w[b] = 0.86 + 0.04 * std::cos((b - 23) * 0.35);
  }
  w[30] = 0.98;  // afternoon peak
  // Gradual decline: ~11% per 30 minutes from the afternoon peak.
  for (int b = 31; b < kBinsPerDay30Min; ++b) w[b] = w[b - 1] * 0.89;
  return w;
}

std::array<double, kBinsPerDay30Min> weekend_curve(double peak) {
  std::array<double, kBinsPerDay30Min> w{};
  // Minimum 03:00-05:00 (bins 6-10), single midday peak 12:00-13:00.
  for (int b = 0; b < kBinsPerDay30Min; ++b) {
    const double hour = b / 2.0;
    double v;
    if (hour < 5.0) {
      v = 0.22 - 0.024 * hour;  // slide into the late-night minimum
      if (hour >= 3.0) v = 0.10;
    } else if (hour < 12.5) {
      v = 0.10 + (peak - 0.10) * (hour - 5.0) / 7.5;  // slow morning rise
    } else if (hour < 13.0) {
      v = peak;
    } else {
      v = peak * std::exp(-(hour - 13.0) * 0.16);  // long afternoon decay
      v = std::max(v, 0.12);
    }
    w[b] = v;
  }
  return w;
}

std::array<double, kBinsPerDay30Min> flatten(
    const std::array<double, kBinsPerDay30Min>& w, double keep) {
  double mean = 0.0;
  for (const double v : w) mean += v;
  mean /= w.size();
  std::array<double, kBinsPerDay30Min> out{};
  for (std::size_t i = 0; i < w.size(); ++i) out[i] = keep * w[i] + (1.0 - keep) * mean;
  return out;
}

}  // namespace

ActivityModel::ActivityModel() {
  const auto weekday = weekday_curve();
  const auto saturday = weekend_curve(0.78);
  const auto sunday = weekend_curve(0.67);  // ~33% below the weekday peak

  const std::array<std::array<double, kBinsPerDay30Min>, 3> base{weekday, saturday,
                                                                 sunday};
  for (std::size_t shape = 0; shape < 3; ++shape) {
    // Rural curves are the same shape, slightly flattened: commute spikes are
    // less pronounced where deployments (and workplaces) are sparse.
    curves_[shape][static_cast<std::size_t>(geo::AreaType::kUrban)] = base[shape];
    curves_[shape][static_cast<std::size_t>(geo::AreaType::kRural)] =
        flatten(base[shape], 0.88);
    for (std::size_t area = 0; area < 2; ++area) {
      double total = 0.0;
      for (int b = 0; b < kBinsPerDay30Min; ++b) {
        total += curves_[shape][area][b];
        cdf_[shape][area][b] = total;
      }
      totals_[shape][area] = total;
      for (int b = 0; b < kBinsPerDay30Min; ++b) cdf_[shape][area][b] /= total;
    }
  }
}

double ActivityModel::weight(int day, int half_hour_bin, geo::AreaType area) const noexcept {
  if (half_hour_bin < 0 || half_hour_bin >= kBinsPerDay30Min) return 0.0;
  return curves_[static_cast<std::size_t>(day_shape(day))]
                [static_cast<std::size_t>(area)][half_hour_bin];
}

double ActivityModel::day_total(int day, geo::AreaType area) const noexcept {
  return totals_[static_cast<std::size_t>(day_shape(day))][static_cast<std::size_t>(area)];
}

util::TimestampMs ActivityModel::sample_event_time(int day, geo::AreaType area,
                                                   util::Rng& rng) const {
  const auto& cdf =
      cdf_[static_cast<std::size_t>(day_shape(day))][static_cast<std::size_t>(area)];
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const int bin = static_cast<int>(it - cdf.begin());
  const std::int64_t bin_start = static_cast<std::int64_t>(bin) * 30 * util::kMsPerMinute;
  return static_cast<util::TimestampMs>(day) * util::kMsPerDay + bin_start +
         static_cast<std::int64_t>(rng.uniform() * 30.0 * util::kMsPerMinute);
}

const std::array<double, kBinsPerDay30Min>& ActivityModel::curve(
    DayShape shape, geo::AreaType area) const {
  return curves_[static_cast<std::size_t>(shape)][static_cast<std::size_t>(area)];
}

}  // namespace tl::mobility
