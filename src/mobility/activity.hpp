#pragma once

// Diurnal/weekly activity model (the temporal engine behind Fig. 7/Fig. 12).
//
// Encodes the paper's observed shapes: on weekdays a sharp x3 ramp from
// 06:00 to the 08:00-08:30 peak, a second peak at 15:00-15:30, then an ~11%
// decline per 30 minutes into the 02:00-03:30 minimum; on weekends a single
// midday peak (12:00-13:00) with Sunday ~33% below Friday, and a
// 03:00-05:00 minimum.

#include <array>

#include "geo/district.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl::mobility {

enum class DayShape : std::uint8_t {
  kWeekday = 0,
  kSaturday,
  kSunday,
};

DayShape day_shape(int day) noexcept;

class ActivityModel {
 public:
  ActivityModel();

  /// Relative HO intensity for a half-hour bin (peak weekday urban == 1.0).
  double weight(int day, int half_hour_bin, geo::AreaType area) const noexcept;

  /// Sum of bin weights over the day — scales per-day HO counts so weekends
  /// produce fewer events.
  double day_total(int day, geo::AreaType area) const noexcept;

  /// Draws an event timestamp within `day`, distributed per the day's curve.
  util::TimestampMs sample_event_time(int day, geo::AreaType area,
                                      util::Rng& rng) const;

  /// Raw curve access for tests/benches.
  const std::array<double, util::kBinsPerDay30Min>& curve(DayShape shape,
                                                          geo::AreaType area) const;

 private:
  // [shape][area][bin]
  std::array<std::array<std::array<double, util::kBinsPerDay30Min>, 2>, 3> curves_;
  std::array<std::array<std::array<double, util::kBinsPerDay30Min>, 2>, 3> cdf_;
  std::array<std::array<double, 2>, 3> totals_;
};

}  // namespace tl::mobility
