#pragma once

// Mobility metrics (§3.3): number of distinct sectors visited per day and
// the time-weighted radius of gyration over visited cell sites.

#include <cstdint>
#include <span>
#include <vector>

#include "util/geo_point.hpp"

namespace tl::mobility {

/// Time-weighted radius of gyration (km).
///
/// The paper's Eq. in §3.3 weights each visited site by the time spent
/// there; we implement the standard normalized form: with w_j = t_j / sum(t),
/// l_cm = sum(w_j l_j) and g = sqrt(sum(w_j |l_j - l_cm|^2)).
double radius_of_gyration(std::span<const util::GeoPoint> locations,
                          std::span<const double> dwell_times);

/// Accumulates one UE-day of sector visits and reduces to the two metrics.
class MobilityMetricsBuilder {
 public:
  void add_visit(std::uint32_t sector_id, const util::GeoPoint& site_location,
                 double dwell_ms);

  std::uint32_t distinct_sectors() const;
  double radius_of_gyration_km() const;

  bool empty() const noexcept { return sector_ids_.empty(); }
  void clear();

 private:
  std::vector<std::uint32_t> sector_ids_;
  std::vector<util::GeoPoint> locations_;
  std::vector<double> dwells_;
};

}  // namespace tl::mobility
