#pragma once

// Movement traces: the per-UE, per-day sequence of positions at which a
// handover opportunity occurs. The simulator maps positions to serving
// sectors; this module is pure geometry + scheduling.

#include <vector>

#include "mobility/mobility_class.hpp"
#include "util/geo_point.hpp"
#include "util/sim_time.hpp"

namespace tl::mobility {

struct MovementEvent {
  util::TimestampMs time = 0;
  util::GeoPoint position;
};

/// Stable per-UE anchors: where the device lives, works, and travels.
struct UePlan {
  MobilityClass mobility_class = MobilityClass::kStationary;
  util::GeoPoint home;
  util::GeoPoint work;       // == home for non-commuters
  util::GeoPoint far_point;  // long-range/high-speed destination
  /// Stable personal schedule offsets (hours).
  double depart_home_h = 7.5;
  double depart_work_h = 17.0;
  double commute_minutes = 35.0;
  /// Mean daily HOs after per-device modulation.
  double daily_ho_mean = 10.0;
};

using DailyTrace = std::vector<MovementEvent>;

}  // namespace tl::mobility
