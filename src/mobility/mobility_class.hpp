#pragma once

// Mobility classes and their mix per device type.
//
// Calibrated to §5.3: smartphones are the mobile class (median 22 visited
// sectors/day, 2.7 km gyration), M2M/IoT devices are mostly static (median
// 1 sector, 0 km) with a fast-moving tail (p95 gyration 20.1 km — modems on
// trains, in-car units, wearables), feature phones sit in between (median 3
// sectors, 0.9 km).

#include <array>
#include <cstdint>
#include <string_view>

#include "devices/device_type.hpp"
#include "topology/rat.hpp"
#include "util/rng.hpp"

namespace tl::mobility {

enum class MobilityClass : std::uint8_t {
  kStationary = 0,  // never leaves its cell cluster (smart meters, CPE)
  kLocal,           // moves within the home area
  kCommuter,        // daily home-work-home pattern
  kLongRange,       // frequent cross-district travel
  kHighSpeed,       // mounted on trains/vehicles; hundreds of km daily
};

inline constexpr std::array<MobilityClass, 5> kAllMobilityClasses{
    MobilityClass::kStationary, MobilityClass::kLocal, MobilityClass::kCommuter,
    MobilityClass::kLongRange, MobilityClass::kHighSpeed};

constexpr std::string_view to_string(MobilityClass c) noexcept {
  switch (c) {
    case MobilityClass::kStationary: return "stationary";
    case MobilityClass::kLocal: return "local";
    case MobilityClass::kCommuter: return "commuter";
    case MobilityClass::kLongRange: return "long-range";
    case MobilityClass::kHighSpeed: return "high-speed";
  }
  return "?";
}

/// Class mix per device type {stationary, local, commuter, long-range,
/// high-speed}. For M2M/IoT the mix is conditioned on device capability:
/// 4G/5G-capable modules are disproportionately the mobile ones (routers and
/// modems on trains, in-car units, wearables — §5.3), while the 2G/3G fleet
/// is dominated by static smart meters.
constexpr std::array<double, 5> mobility_mix(devices::DeviceType type,
                                             bool modern_rat) noexcept {
  switch (type) {
    case devices::DeviceType::kSmartphone: return {0.08, 0.22, 0.62, 0.073, 0.007};
    case devices::DeviceType::kM2mIot:
      return modern_rat ? std::array<double, 5>{0.45, 0.45, 0.02, 0.06, 0.02}
                        : std::array<double, 5>{0.70, 0.27, 0.005, 0.015, 0.01};
    case devices::DeviceType::kFeaturePhone: return {0.25, 0.55, 0.18, 0.018, 0.002};
  }
  return {1.0, 0.0, 0.0, 0.0, 0.0};
}

/// Mean handovers per day for the class (before per-device and per-day
/// modulation). Together with the type mix this lands near the paper's
/// aggregate of ~42 HOs/UE/day and its 94/6 smartphone/other split.
constexpr double base_daily_handovers(MobilityClass c) noexcept {
  switch (c) {
    case MobilityClass::kStationary: return 0.6;
    case MobilityClass::kLocal: return 9.0;
    case MobilityClass::kCommuter: return 72.0;
    case MobilityClass::kLongRange: return 130.0;
    case MobilityClass::kHighSpeed: return 420.0;
  }
  return 1.0;
}

/// Samples a mobility class for a device of the given type and capability.
MobilityClass sample_mobility_class(devices::DeviceType type,
                                    topology::RatSupport support, util::Rng& rng);

}  // namespace tl::mobility
