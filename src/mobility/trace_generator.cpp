#include "mobility/trace_generator.hpp"

#include <algorithm>
#include <cmath>

namespace tl::mobility {

using util::GeoPoint;
using util::Rng;
using util::TimestampMs;

TraceGenerator::TraceGenerator(const geo::Country& country, const ActivityModel& activity,
                               std::uint64_t seed)
    : country_(country), activity_(activity), seed_(seed) {}

GeoPoint TraceGenerator::clamp_to_country(GeoPoint p) const noexcept {
  p.x_km = std::clamp(p.x_km, 0.0, country_.width_km());
  p.y_km = std::clamp(p.y_km, 0.0, country_.height_km());
  return p;
}

UePlan TraceGenerator::plan_for(const devices::Ue& ue) const {
  Rng rng = Rng::derive(seed_, 0x91a4u, ue.id);
  UePlan plan;
  plan.mobility_class = sample_mobility_class(ue.type, ue.rat_support, rng);

  const auto& pc = country_.postcode(ue.home_postcode);
  const double scatter = std::sqrt(std::max(pc.area_km2, 0.05)) / 2.5;
  plan.home = clamp_to_country(
      {pc.centroid.x_km + rng.normal(0.0, scatter), pc.centroid.y_km + rng.normal(0.0, scatter)});

  // Work anchor: lognormal commute distance, median ~4 km (yields the
  // smartphone median gyration of ~2.7 km once local scatter mixes in).
  const double angle = rng.uniform(0.0, 2.0 * M_PI);
  double work_dist = 0.0;
  switch (plan.mobility_class) {
    case MobilityClass::kCommuter:
      work_dist = std::exp(std::log(4.0) + 0.75 * rng.normal());
      break;
    case MobilityClass::kLongRange:
      work_dist = rng.uniform(25.0, 120.0);
      break;
    case MobilityClass::kHighSpeed:
      work_dist = rng.uniform(110.0, 520.0);
      break;
    default:
      work_dist = 0.0;
  }
  plan.work = clamp_to_country({plan.home.x_km + work_dist * std::cos(angle),
                                plan.home.y_km + work_dist * std::sin(angle)});
  const double far_angle = rng.uniform(0.0, 2.0 * M_PI);
  const double far_dist = rng.uniform(30.0, 160.0);
  plan.far_point = clamp_to_country({plan.home.x_km + far_dist * std::cos(far_angle),
                                     plan.home.y_km + far_dist * std::sin(far_angle)});

  plan.depart_home_h = std::clamp(7.4 + rng.normal(0.0, 0.55), 5.5, 9.5);
  plan.depart_work_h = std::clamp(16.9 + rng.normal(0.0, 0.75), 14.5, 19.5);
  const double commute_km = tl::util::distance_km(plan.home, plan.work);
  const double speed_kmh = plan.mobility_class == MobilityClass::kHighSpeed ? 150.0 : 32.0;
  plan.commute_minutes = std::clamp(8.0 + commute_km / speed_kmh * 60.0, 8.0, 240.0);

  plan.daily_ho_mean =
      base_daily_handovers(plan.mobility_class) * static_cast<double>(ue.ho_rate_multiplier);
  return plan;
}

GeoPoint TraceGenerator::position_at(const UePlan& plan, TimestampMs time, bool weekend,
                                     Rng& rng) const {
  const double h = util::SimCalendar::fractional_hour(time);
  const double commute_h = plan.commute_minutes / 60.0;

  const auto jittered = [&](GeoPoint base, double sigma_km) {
    return clamp_to_country(
        {base.x_km + rng.normal(0.0, sigma_km), base.y_km + rng.normal(0.0, sigma_km)});
  };
  const auto along = [&](GeoPoint from, GeoPoint to, double f) {
    const GeoPoint p = from + (to - from) * std::clamp(f, 0.0, 1.0);
    return jittered(p, 0.35);
  };

  switch (plan.mobility_class) {
    case MobilityClass::kStationary:
      return jittered(plan.home, 0.05);

    case MobilityClass::kLocal: {
      // Random points in a disc around home; radius grows midday.
      const double radius = 0.5 + 1.1 * std::exp(-std::pow(h - 13.0, 2) / 40.0);
      const double a = rng.uniform(0.0, 2.0 * M_PI);
      const double r = radius * std::sqrt(rng.uniform());
      return clamp_to_country(
          {plan.home.x_km + r * std::cos(a), plan.home.y_km + r * std::sin(a)});
    }

    case MobilityClass::kCommuter: {
      if (weekend) {
        // Weekend outing around midday toward a nearby leisure anchor.
        if (h >= 11.0 && h < 15.0) return along(plan.home, plan.work, 0.5 + 0.1 * rng.normal());
        return jittered(plan.home, 0.5);
      }
      const double out_start = plan.depart_home_h;
      const double out_end = out_start + commute_h;
      const double back_start = plan.depart_work_h;
      const double back_end = back_start + commute_h;
      if (h < out_start || h >= back_end) return jittered(plan.home, 0.4);
      if (h < out_end) return along(plan.home, plan.work, (h - out_start) / commute_h);
      if (h < back_start) return jittered(plan.work, 0.5);
      return along(plan.work, plan.home, (h - back_start) / commute_h);
    }

    case MobilityClass::kLongRange: {
      // Morning leg to the far point, afternoon leg back; roams there midday.
      const double leg_h = std::max(commute_h, 0.6);
      if (h < 8.0) return jittered(plan.home, 0.5);
      if (h < 8.0 + leg_h) return along(plan.home, plan.far_point, (h - 8.0) / leg_h);
      if (h < 16.0) return jittered(plan.far_point, 1.2);
      if (h < 16.0 + leg_h) return along(plan.far_point, plan.home, (h - 16.0) / leg_h);
      return jittered(plan.home, 0.5);
    }

    case MobilityClass::kHighSpeed: {
      // Continuous shuttling along the route during service hours.
      if (h < 5.0 || h >= 23.0) return jittered(plan.home, 0.3);
      const double route_km = tl::util::distance_km(plan.home, plan.work);
      const double lap_h = std::max(2.0 * route_km / 150.0, 0.5);
      const double phase = std::fmod(h - 5.0, lap_h) / lap_h;  // 0..1 over a round trip
      const double f = phase < 0.5 ? phase * 2.0 : 2.0 - phase * 2.0;
      return along(plan.home, plan.work, f);
    }
  }
  return plan.home;
}

DailyTrace TraceGenerator::generate(const devices::Ue& ue, const UePlan& plan,
                                    int day) const {
  Rng rng = Rng::derive(seed_, 0xdab1u, ue.id, static_cast<std::uint64_t>(day));
  const auto& pc = country_.postcode(ue.home_postcode);
  const geo::AreaType area = pc.area_type();

  // Scale the class's weekday mean by the day's total activity, so weekends
  // carry fewer events (Fig. 7's Friday-vs-Sunday gap).
  const double weekday_total = activity_.day_total(0, area);  // day 0 is a Monday
  const double mean = plan.daily_ho_mean * activity_.day_total(day, area) / weekday_total;

  // Poisson draw via thinning of the exponential inter-arrival sum;
  // for large means use a normal approximation.
  std::size_t n;
  if (mean <= 0.0) {
    n = 0;
  } else if (mean < 50.0) {
    const double limit = std::exp(-mean);
    double prod = rng.uniform();
    n = 0;
    while (prod > limit) {
      prod *= rng.uniform();
      ++n;
    }
  } else {
    n = static_cast<std::size_t>(
        std::max(0.0, std::round(mean + std::sqrt(mean) * rng.normal())));
  }

  const bool weekend = util::SimCalendar::is_weekend_day(day);
  DailyTrace trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MovementEvent ev;
    ev.time = activity_.sample_event_time(day, area, rng);
    ev.position = position_at(plan, ev.time, weekend, rng);
    trace.push_back(ev);
  }
  std::sort(trace.begin(), trace.end(),
            [](const MovementEvent& a, const MovementEvent& b) { return a.time < b.time; });
  return trace;
}

}  // namespace tl::mobility
