#pragma once

// Generates movement traces for UEs, one day at a time.
//
// Deterministic: the per-UE plan derives from (seed, ue id) and the per-day
// trace from (seed, ue id, day), so any UE-day can be regenerated in
// isolation — the property that makes the simulator parallelizable and the
// telemetry reproducible.

#include "devices/population.hpp"
#include "geo/country.hpp"
#include "mobility/activity.hpp"
#include "mobility/trace.hpp"

namespace tl::mobility {

class TraceGenerator {
 public:
  TraceGenerator(const geo::Country& country, const ActivityModel& activity,
                 std::uint64_t seed);

  /// The UE's stable anchors and schedule.
  UePlan plan_for(const devices::Ue& ue) const;

  /// Handover-opportunity events for one UE-day, sorted by time.
  DailyTrace generate(const devices::Ue& ue, const UePlan& plan, int day) const;

  /// Position of the UE at `time` under `plan` (pure function of the plan
  /// plus small per-event jitter drawn from `rng`).
  util::GeoPoint position_at(const UePlan& plan, util::TimestampMs time, bool weekend,
                             util::Rng& rng) const;

 private:
  util::GeoPoint clamp_to_country(util::GeoPoint p) const noexcept;

  const geo::Country& country_;
  const ActivityModel& activity_;
  std::uint64_t seed_;
};

}  // namespace tl::mobility
