#include "mobility/mobility_class.hpp"

namespace tl::mobility {

MobilityClass sample_mobility_class(devices::DeviceType type,
                                    topology::RatSupport support, util::Rng& rng) {
  const bool modern = support >= topology::RatSupport::kUpTo4G;
  const auto mix = mobility_mix(type, modern);
  double u = rng.uniform();
  for (std::size_t i = 0; i < mix.size(); ++i) {
    u -= mix[i];
    if (u <= 0.0) return static_cast<MobilityClass>(i);
  }
  return MobilityClass::kHighSpeed;
}

}  // namespace tl::mobility
