#include "mobility/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::mobility {

double radius_of_gyration(std::span<const util::GeoPoint> locations,
                          std::span<const double> dwell_times) {
  if (locations.size() != dwell_times.size()) {
    throw std::invalid_argument{"radius_of_gyration: length mismatch"};
  }
  if (locations.empty()) return 0.0;
  double total = 0.0;
  for (const double t : dwell_times) {
    if (t < 0.0) throw std::invalid_argument{"radius_of_gyration: negative dwell"};
    total += t;
  }
  if (total <= 0.0) return 0.0;

  util::GeoPoint cm{0.0, 0.0};
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const double w = dwell_times[i] / total;
    cm.x_km += w * locations[i].x_km;
    cm.y_km += w * locations[i].y_km;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const double w = dwell_times[i] / total;
    sum += w * util::squared_distance_km2(locations[i], cm);
  }
  return std::sqrt(sum);
}

void MobilityMetricsBuilder::add_visit(std::uint32_t sector_id,
                                       const util::GeoPoint& site_location,
                                       double dwell_ms) {
  sector_ids_.push_back(sector_id);
  locations_.push_back(site_location);
  dwells_.push_back(dwell_ms);
}

std::uint32_t MobilityMetricsBuilder::distinct_sectors() const {
  std::vector<std::uint32_t> ids = sector_ids_;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return static_cast<std::uint32_t>(ids.size());
}

double MobilityMetricsBuilder::radius_of_gyration_km() const {
  return radius_of_gyration(locations_, dwells_);
}

void MobilityMetricsBuilder::clear() {
  sector_ids_.clear();
  locations_.clear();
  dwells_.clear();
}

}  // namespace tl::mobility
