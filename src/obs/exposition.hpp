#pragma once

// Exposition writers: serialize a MetricsSnapshot for scraping.
//
//  - Prometheus text format (v0.0.4): counters end in _total, histograms
//    expand to cumulative _bucket{le=...} series plus _sum/_count, gauges
//    are plain samples. `network_ops_report --metrics-out metrics.prom`
//    writes this so a textfile-collector (or curl | promtool) can ingest a
//    running study's internals.
//  - JSON: one object per metric kind, numbers as numbers — the BENCH_obs
//    artifact and ad-hoc tooling read this.
//
// Both writers emit metrics in name order (MetricsSnapshot is sorted), so
// output is byte-stable for a given snapshot.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace tl::obs {

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

std::string to_prometheus(const MetricsSnapshot& snapshot);
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace tl::obs
