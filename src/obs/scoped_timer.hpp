#pragma once

// RAII timing spans for the obs layer.
//
// ScopedTimer measures one steady_clock span and records it (in seconds)
// into an obs::Histogram when it leaves scope — the universal shape of the
// engine's instrumentation points (task latency, shard sim/merge time,
// per-day wall time, WAL commit time). When the handle is dead (no registry
// installed, or the registry disabled), construction skips the clock read
// entirely, so an un-observed hot path pays one branch.

#include <chrono>

#include "obs/metrics.hpp"

namespace tl::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram) noexcept
      : histogram_(histogram), armed_(histogram.live()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the span now (idempotent) and returns it in seconds — for
  /// callers that also want the number, not just the metric. Returns 0.0
  /// when the timer never armed.
  double stop() noexcept {
    if (!armed_) return 0.0;
    armed_ = false;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    histogram_.observe(seconds);
    return seconds;
  }

  /// Abandons the span without recording (error paths that should not
  /// pollute a latency histogram).
  void cancel() noexcept { armed_ = false; }

 private:
  Histogram histogram_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace tl::obs
