#include "obs/study_monitor.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/exposition.hpp"

namespace tl::obs {

StudyMonitor::StudyMonitor(MetricsRegistry& registry)
    : registry_(registry),
      start_(std::chrono::steady_clock::now()),
      last_scrape_(start_) {}

StudyMonitor::Snapshot StudyMonitor::snapshot() {
  Snapshot snap;
  snap.metrics = registry_.scrape();
  const auto now = std::chrono::steady_clock::now();
  snap.uptime_s = std::chrono::duration<double>(now - start_).count();

  const auto counter = [&](const char* name) -> std::uint64_t {
    const CounterSnapshot* c = snap.metrics.find_counter(name);
    return c != nullptr ? c->value : 0;
  };
  snap.days = counter("tl_sim_days_total");
  snap.ue_days = counter("tl_sim_ue_days_total");
  snap.records = counter("tl_sim_records_total");
  snap.retries = counter("tl_supervise_retries_total");
  snap.wal_bytes = counter("tl_wal_bytes_total");
  if (const GaugeSnapshot* g =
          snap.metrics.find_gauge("tl_supervise_quarantine_size")) {
    snap.quarantine_size = g->value;
  }

  // The first interval spans from construction (last_scrape_ = start_), so a
  // single end-of-run snapshot still yields whole-run rates.
  snap.interval_s = std::chrono::duration<double>(now - last_scrape_).count();
  if (snap.interval_s > 0.0) {
    snap.ue_days_per_sec =
        static_cast<double>(snap.ue_days - last_ue_days_) / snap.interval_s;
    snap.records_per_sec =
        static_cast<double>(snap.records - last_records_) / snap.interval_s;
  }
  last_scrape_ = now;
  last_ue_days_ = snap.ue_days;
  last_records_ = snap.records;
  return snap;
}

namespace {
void write_file(const std::string& path, const std::string& body) {
  std::ofstream os{path, std::ios::trunc};
  os << body;
  if (!os) throw std::runtime_error{"StudyMonitor: could not write " + path};
}
}  // namespace

void StudyMonitor::write_prometheus_file(const std::string& path) {
  write_file(path, to_prometheus(registry_.scrape()));
}

void StudyMonitor::write_json_file(const std::string& path) {
  write_file(path, to_json(registry_.scrape()));
}

}  // namespace tl::obs
