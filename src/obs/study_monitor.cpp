#include "obs/study_monitor.hpp"

#include <stdexcept>

#include "io/file.hpp"
#include "obs/exposition.hpp"

namespace tl::obs {

StudyMonitor::StudyMonitor(MetricsRegistry& registry)
    : registry_(registry),
      start_(std::chrono::steady_clock::now()),
      last_scrape_(start_) {}

StudyMonitor::Snapshot StudyMonitor::snapshot() {
  Snapshot snap;
  snap.metrics = registry_.scrape();
  const auto now = std::chrono::steady_clock::now();
  snap.uptime_s = std::chrono::duration<double>(now - start_).count();

  const auto counter = [&](const char* name) -> std::uint64_t {
    const CounterSnapshot* c = snap.metrics.find_counter(name);
    return c != nullptr ? c->value : 0;
  };
  snap.days = counter("tl_sim_days_total");
  snap.ue_days = counter("tl_sim_ue_days_total");
  snap.records = counter("tl_sim_records_total");
  snap.retries = counter("tl_supervise_retries_total");
  snap.wal_bytes = counter("tl_wal_bytes_total");
  if (const GaugeSnapshot* g =
          snap.metrics.find_gauge("tl_supervise_quarantine_size")) {
    snap.quarantine_size = g->value;
  }

  // The first interval spans from construction (last_scrape_ = start_), so a
  // single end-of-run snapshot still yields whole-run rates.
  snap.interval_s = std::chrono::duration<double>(now - last_scrape_).count();
  if (snap.interval_s > 0.0) {
    snap.ue_days_per_sec =
        static_cast<double>(snap.ue_days - last_ue_days_) / snap.interval_s;
    snap.records_per_sec =
        static_cast<double>(snap.records - last_records_) / snap.interval_s;
  }
  last_scrape_ = now;
  last_ue_days_ = snap.ue_days;
  last_records_ = snap.records;
  return snap;
}

namespace {
// Atomic publish: scrape files are read by external collectors, which must
// never observe a half-written dump. Write to a sibling tmp, fsync, rename
// over the destination; a crash leaves either the old file or the new one.
void write_file(const std::string& path, const std::string& body) {
  io::FileSystem& fs = io::StdioFileSystem::instance();
  const std::string tmp = path + ".tmp";
  try {
    auto file = fs.open(tmp, io::OpenMode::kTruncate);
    if (file->write(body.data(), body.size()) != body.size()) {
      throw io::IoError{"short write"};
    }
    file->sync();
    file->close();
    fs.rename(tmp, path);
  } catch (const io::IoError& error) {
    throw std::runtime_error{"StudyMonitor: could not write " + path + ": " +
                             error.what()};
  }
}
}  // namespace

void StudyMonitor::write_prometheus_file(const std::string& path) {
  write_file(path, to_prometheus(registry_.scrape()));
}

void StudyMonitor::write_json_file(const std::string& path) {
  write_file(path, to_json(registry_.scrape()));
}

}  // namespace tl::obs
