#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::obs {

namespace detail {

std::size_t shard_index() noexcept {
  // Threads draw a shard lazily, round-robin, once for their lifetime. The
  // assignment is process-wide (not per registry): it only spreads writers,
  // so sharing the sequence across registries is harmless.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

HistogramFamily::HistogramFamily(std::string name_in, std::string help_in,
                                 analysis::Histogram bins_in)
    : name(std::move(name_in)), help(std::move(help_in)), bins(std::move(bins_in)) {
  for (Shard& shard : shards) {
    // +3 trailing slots: underflow, overflow, nan.
    shard.buckets = std::vector<std::atomic<std::uint64_t>>(bins.bins().size() + 3);
  }
}

}  // namespace detail

void Histogram::observe(double value) const noexcept {
  if (!live()) return;
  detail::HistogramFamily::Shard& shard =
      family_->shards[detail::shard_index()];
  const std::size_t bins = family_->bins.bins().size();
  std::size_t slot;
  const std::size_t idx = family_->bins.bin_index(value);
  if (idx != analysis::Histogram::npos) {
    slot = idx;
  } else if (std::isnan(value)) {
    slot = bins + 2;
  } else if (value < family_->bins.bins().front().lo) {
    slot = bins;
  } else {
    slot = bins + 1;
  }
  shard.buckets[slot].fetch_add(1, std::memory_order_relaxed);
  if (slot != bins + 2) detail::atomic_add(shard.sum, value);
}

Counter MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock{mutex_};
  for (auto& family : counters_) {
    if (family.name == name) return Counter{&family, &enabled_};
  }
  for (const auto& [existing, kind] : names_) {
    if (existing == name && kind != Kind::kCounter) {
      throw std::logic_error{"MetricsRegistry: " + name +
                             " already registered as a different kind"};
    }
  }
  counters_.emplace_back();
  counters_.back().name = name;
  counters_.back().help = help;
  names_.emplace_back(name, Kind::kCounter);
  return Counter{&counters_.back(), &enabled_};
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock{mutex_};
  for (auto& family : gauges_) {
    if (family.name == name) return Gauge{&family, &enabled_};
  }
  for (const auto& [existing, kind] : names_) {
    if (existing == name && kind != Kind::kGauge) {
      throw std::logic_error{"MetricsRegistry: " + name +
                             " already registered as a different kind"};
    }
  }
  gauges_.emplace_back();
  gauges_.back().name = name;
  gauges_.back().help = help;
  names_.emplace_back(name, Kind::kGauge);
  return Gauge{&gauges_.back(), &enabled_};
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> edges,
                                     const std::string& help) {
  // Validate before taking the lock: the analysis::Histogram constructor
  // throws std::invalid_argument on < 2 or non-monotone edges.
  analysis::Histogram bins{std::move(edges)};
  std::lock_guard<std::mutex> lock{mutex_};
  for (auto& family : histograms_) {
    if (family->name == name) return Histogram{family.get(), &enabled_};
  }
  for (const auto& [existing, kind] : names_) {
    if (existing == name && kind != Kind::kHistogram) {
      throw std::logic_error{"MetricsRegistry: " + name +
                             " already registered as a different kind"};
    }
  }
  histograms_.push_back(std::make_unique<detail::HistogramFamily>(
      name, help, std::move(bins)));
  names_.emplace_back(name, Kind::kHistogram);
  return Histogram{histograms_.back().get(), &enabled_};
}

std::vector<double> MetricsRegistry::exponential_edges(double lo, double factor,
                                                       std::size_t count) {
  if (!(lo > 0.0) || !(factor > 1.0) || count < 1) {
    throw std::invalid_argument{"MetricsRegistry::exponential_edges: bad spec"};
  }
  std::vector<double> edges(count + 1);
  double edge = lo;
  for (std::size_t i = 0; i <= count; ++i) {
    edges[i] = edge;
    edge *= factor;
  }
  return edges;
}

std::vector<double> MetricsRegistry::latency_edges_s() {
  // 100 us .. 100 s in x2.5 steps: fine enough for shard/day timings, coarse
  // enough that a snapshot stays one screen.
  return exponential_edges(100e-6, 2.5, 15);
}

MetricsSnapshot MetricsRegistry::scrape() const {
  std::lock_guard<std::mutex> lock{mutex_};
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& family : counters_) {
    CounterSnapshot c;
    c.name = family.name;
    c.help = family.help;
    for (const auto& cell : family.cells) {
      c.value += cell.value.load(std::memory_order_relaxed);
    }
    snapshot.counters.push_back(std::move(c));
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& family : gauges_) {
    snapshot.gauges.push_back(
        {family.name, family.help, family.value.load(std::memory_order_relaxed)});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& family : histograms_) {
    HistogramSnapshot h;
    h.name = family->name;
    h.help = family->help;
    const auto& bins = family->bins.bins();
    h.edges.reserve(bins.size() + 1);
    for (const auto& bin : bins) h.edges.push_back(bin.lo);
    h.edges.push_back(bins.back().hi);
    h.counts.assign(bins.size(), 0);
    for (const auto& shard : family->shards) {
      for (std::size_t i = 0; i < bins.size(); ++i) {
        h.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
      }
      h.underflow += shard.buckets[bins.size()].load(std::memory_order_relaxed);
      h.overflow += shard.buckets[bins.size() + 1].load(std::memory_order_relaxed);
      h.nan += shard.buckets[bins.size() + 2].load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : h.counts) h.count += c;
    h.count += h.underflow + h.overflow;
    snapshot.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

double HistogramSnapshot::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument{"HistogramSnapshot::quantile: q outside [0,1]"};
  }
  if (count == 0) return 0.0;
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = underflow;
  if (cumulative >= target) return edges.front();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target) return edges[i + 1];
  }
  return edges.back();
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    const std::string& name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    const std::string& name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {
std::atomic<MetricsRegistry*> g_registry{nullptr};
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace

MetricsRegistry* global_registry() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

void set_global_registry(MetricsRegistry* registry) noexcept {
  g_registry.store(registry, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_release);
}

std::uint64_t global_epoch() noexcept {
  return g_epoch.load(std::memory_order_acquire);
}

}  // namespace tl::obs
