#pragma once

// StudyMonitor: the operator-facing view of a running study.
//
// A registry is a bag of raw families; the monitor turns successive scrapes
// into the numbers a NOC dashboard wants — interval throughput (UE-days/sec,
// records/sec since the previous snapshot), cumulative totals, and the
// headline health indicators (retry pressure, quarantine size, WAL volume).
// It also fronts the exposition writers so callers can dump metrics.prom /
// metrics.json without touching the registry directly.
//
// Scrape cadence is the caller's: per day, per N seconds from a sidecar
// thread, or once at the end of a run. snapshot() is thread-safe against
// concurrent writers (they use relaxed atomics), and monitors never block
// the hot path.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace tl::obs {

class StudyMonitor {
 public:
  struct Snapshot {
    MetricsSnapshot metrics;
    double uptime_s = 0.0;    ///< since the monitor was constructed
    double interval_s = 0.0;  ///< since the previous snapshot (construction
                              ///< for the first), the window the rates cover
    // Interval rates, derived from tl_sim_* counter deltas.
    double ue_days_per_sec = 0.0;
    double records_per_sec = 0.0;
    // Cumulative totals (0 when the corresponding family does not exist).
    std::uint64_t days = 0;
    std::uint64_t ue_days = 0;
    std::uint64_t records = 0;
    std::uint64_t retries = 0;
    std::uint64_t wal_bytes = 0;
    double quarantine_size = 0.0;
  };

  /// `registry` is borrowed and must outlive the monitor.
  explicit StudyMonitor(MetricsRegistry& registry);

  Snapshot snapshot();

  /// Scrapes and writes the Prometheus text / JSON exposition to `path`.
  /// Throws std::runtime_error when the file cannot be written.
  void write_prometheus_file(const std::string& path);
  void write_json_file(const std::string& path);

  MetricsRegistry& registry() noexcept { return registry_; }

 private:
  MetricsRegistry& registry_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_scrape_;
  std::uint64_t last_ue_days_ = 0;
  std::uint64_t last_records_ = 0;
};

}  // namespace tl::obs
