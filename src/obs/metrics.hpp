#pragma once

// Runtime observability for the measurement system itself.
//
// The pipeline this repo models is an always-on operator-side system
// (~8 TB/day of signaling); a multi-week study run needs the same continuous
// internal telemetry — shard latency, retry pressure, WAL throughput,
// quarantine churn — that the network under study gets. This module is the
// substrate: a MetricsRegistry of counters, gauges, and fixed-bucket latency
// histograms, built for a hot path that is allowed to cost almost nothing.
//
// Design constraints, in order:
//  1. No hot-path locks. Every counter/histogram is sharded into
//     cache-line-padded cells; a writer touches only its own thread's cell
//     with a relaxed atomic add, and scrape() merges the shards. Gauges are
//     a single relaxed atomic (last-writer-wins set, CAS add).
//  2. Observational only. Metrics never touch RNG state, record streams, or
//     WAL bytes — the existing CRC determinism gates (test_exec, test_obs,
//     bench_throughput) hold with metrics on or off at any thread count.
//  3. Optional everywhere. Handles are null-safe no-ops when no registry is
//     installed, and a registry can be disabled wholesale (one relaxed load
//     per operation) so the overhead bench can compare on/off on one world.
//
// Instrumented components resolve their handles from the process-global
// registry (set_global_registry). Short-lived components (ThreadPool,
// ShardedDayRunner) capture at construction; long-lived ones (Simulator,
// RecordLog, StudySupervisor) re-resolve when the global epoch changes, so
// installing a registry between runs of a shared world "just works".
//
// Histogram binning deliberately reuses analysis::Histogram as the edge
// oracle: its validated constructor (monotone edges, >= 2 of them) and
// NaN-safe bin_index are exactly the guarantees a latency histogram needs.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"

namespace tl::obs {

/// One scrape of one metric family; MetricsSnapshot aggregates them. All
/// vectors are sorted by name so exposition output is deterministic.
struct CounterSnapshot {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<double> edges;           ///< bins+1 ascending bucket edges
  std::vector<std::uint64_t> counts;   ///< per-bin observation counts
  std::uint64_t underflow = 0;         ///< observations below edges.front()
  std::uint64_t overflow = 0;          ///< observations at/above edges.back()
  std::uint64_t nan = 0;               ///< NaN observations (dropped from sum)
  std::uint64_t count = 0;             ///< all finite observations
  double sum = 0.0;                    ///< sum of all finite observations

  /// Smallest edge e with cumulative_count(e)/count >= q; edges.back() when
  /// the mass sits in the overflow bucket. A bucketed quantile readout.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* find_counter(const std::string& name) const noexcept;
  const GaugeSnapshot* find_gauge(const std::string& name) const noexcept;
  const HistogramSnapshot* find_histogram(const std::string& name) const noexcept;
};

namespace detail {

/// Hot-path cells are cache-line padded so two threads bumping different
/// shards of the same counter never share a line.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

/// Writer shards. Each thread is pinned (thread_local, round-robin) to one
/// shard index for its lifetime; collisions just share a relaxed atomic.
inline constexpr std::size_t kShards = 16;

std::size_t shard_index() noexcept;

/// add for atomic<double> via CAS (portable; the cell is per-thread-shard,
/// so the loop virtually never retries).
void atomic_add(std::atomic<double>& target, double delta) noexcept;

struct CounterFamily {
  std::string name;
  std::string help;
  Cell cells[kShards];
};

struct GaugeFamily {
  std::string name;
  std::string help;
  std::atomic<double> value{0.0};
};

struct HistogramFamily {
  HistogramFamily(std::string name, std::string help, analysis::Histogram bins);
  std::string name;
  std::string help;
  analysis::Histogram bins;  ///< const after construction: the edge oracle
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;  // bins + under/over/nan
    std::atomic<double> sum{0.0};
  };
  Shard shards[kShards];
};

}  // namespace detail

class MetricsRegistry;

/// Monotone counter handle. Trivially copyable; default-constructed (or
/// resolved without a registry) handles are no-ops. `live()` lets callers
/// skip expensive measurement (clock reads) when nobody is listening.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept {
    if (live()) family_->cells[detail::shard_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  bool live() const noexcept {
    return family_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter(detail::CounterFamily* family, const std::atomic<bool>* enabled)
      : family_(family), enabled_(enabled) {}
  detail::CounterFamily* family_ = nullptr;
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Point-in-time gauge handle (queue depth, quarantine size, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept {
    if (live()) family_->value.store(value, std::memory_order_relaxed);
  }
  void add(double delta) const noexcept {
    if (live()) detail::atomic_add(family_->value, delta);
  }
  bool live() const noexcept {
    return family_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge(detail::GaugeFamily* family, const std::atomic<bool>* enabled)
      : family_(family), enabled_(enabled) {}
  detail::GaugeFamily* family_ = nullptr;
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Fixed-bucket histogram handle; observations are in seconds by convention
/// for *_seconds metrics, but the type is unit-agnostic.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;
  bool live() const noexcept {
    return family_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Histogram(detail::HistogramFamily* family, const std::atomic<bool>* enabled)
      : family_(family), enabled_(enabled) {}
  detail::HistogramFamily* family_ = nullptr;
  const std::atomic<bool>* enabled_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is idempotent by name (the existing family is returned);
  /// a name registered as a different metric kind throws std::logic_error.
  /// Registration takes a mutex — do it at component setup, not per event.
  Counter counter(const std::string& name, const std::string& help = "");
  Gauge gauge(const std::string& name, const std::string& help = "");
  /// `edges` must satisfy analysis::Histogram's contract (>= 2 strictly
  /// increasing finite edges) — std::invalid_argument otherwise.
  Histogram histogram(const std::string& name, std::vector<double> edges,
                      const std::string& help = "");

  /// Default latency buckets: 16 exponential edges, 100 us .. 100 s.
  static std::vector<double> latency_edges_s();
  /// `count`+1 edges from lo, multiplying by factor: lo, lo*f, lo*f^2, ...
  static std::vector<double> exponential_edges(double lo, double factor,
                                               std::size_t count);

  /// Merges every shard of every family into one consistent-enough snapshot
  /// (concurrent writers may land between cells; each cell is exact).
  MetricsSnapshot scrape() const;

  /// Disabled registries keep their families but drop every operation (one
  /// relaxed load per op) — the "metrics-off" arm of the overhead bench.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  // deques: family addresses must survive later registrations (handles hold
  // raw pointers into them).
  std::deque<detail::CounterFamily> counters_;
  std::deque<detail::GaugeFamily> gauges_;
  std::deque<std::unique_ptr<detail::HistogramFamily>> histograms_;
  std::vector<std::pair<std::string, Kind>> names_;
};

/// Process-global registry (borrowed; null = observability off). Installing
/// a different pointer bumps the epoch so long-lived components know to
/// re-resolve their handles. The registry must outlive every component that
/// resolved handles from it.
MetricsRegistry* global_registry() noexcept;
void set_global_registry(MetricsRegistry* registry) noexcept;
std::uint64_t global_epoch() noexcept;

/// RAII install/restore, for tests and benches.
class ScopedGlobalRegistry {
 public:
  explicit ScopedGlobalRegistry(MetricsRegistry* registry)
      : previous_(global_registry()) {
    set_global_registry(registry);
  }
  ~ScopedGlobalRegistry() { set_global_registry(previous_); }
  ScopedGlobalRegistry(const ScopedGlobalRegistry&) = delete;
  ScopedGlobalRegistry& operator=(const ScopedGlobalRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace tl::obs
