#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace tl::obs {
namespace {

/// Shortest round-trip-safe formatting; Prometheus and JSON both want plain
/// decimal or scientific, never locale commas or "nan"/"inf" in JSON.
std::string fmt(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buf;
}

void write_help_type(std::ostream& os, const std::string& name,
                     const std::string& help, const char* type) {
  if (!help.empty()) os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " " << type << "\n";
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    write_help_type(os, c.name, c.help, "counter");
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    write_help_type(os, g.name, g.help, "gauge");
    os << g.name << " " << fmt(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    write_help_type(os, h.name, h.help, "histogram");
    // Prometheus buckets are cumulative and le-labelled; the sub-first-edge
    // underflow mass folds into every bucket, overflow only into +Inf.
    std::uint64_t cumulative = h.underflow;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      os << h.name << "_bucket{le=\"" << fmt(h.edges[i + 1]) << "\"} " << cumulative
         << "\n";
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << h.name << "_sum " << fmt(h.sum) << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
}

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    os << (i ? ",\n    " : "\n    ") << "\"";
    json_escape(os, c.name);
    os << "\": " << c.value;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    os << (i ? ",\n    " : "\n    ") << "\"";
    json_escape(os, g.name);
    os << "\": " << fmt(g.value);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i ? ",\n    " : "\n    ") << "\"";
    json_escape(os, h.name);
    os << "\": {\"edges\": [";
    for (std::size_t e = 0; e < h.edges.size(); ++e) {
      os << (e ? ", " : "") << fmt(h.edges[e]);
    }
    os << "], \"counts\": [";
    for (std::size_t c = 0; c < h.counts.size(); ++c) {
      os << (c ? ", " : "") << h.counts[c];
    }
    os << "], \"underflow\": " << h.underflow << ", \"overflow\": " << h.overflow
       << ", \"nan\": " << h.nan << ", \"count\": " << h.count
       << ", \"sum\": " << fmt(h.sum) << "}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(os, snapshot);
  return os.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_json(os, snapshot);
  return os.str();
}

}  // namespace tl::obs
