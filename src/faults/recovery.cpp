#include "faults/recovery.hpp"

#include <algorithm>
#include <cmath>

namespace tl::faults {

double RecoveryModel::backoff_ms(int reattempt_index) const noexcept {
  if (reattempt_index < 1) return 0.0;
  const double raw =
      config_.backoff_base_ms *
      std::pow(config_.backoff_factor, static_cast<double>(reattempt_index - 1));
  return std::min(raw, config_.backoff_cap_ms);
}

RecoveryDecision RecoveryModel::decide(int reattempt_index, util::Rng& rng) const noexcept {
  RecoveryDecision decision;
  if (reattempt_index > config_.max_reattempts) {
    decision.action = RecoveryAction::kFallbackToSource;
    return decision;
  }
  if (rng.chance(config_.p_reattempt_target)) {
    decision.action = RecoveryAction::kReestablishTarget;
    const double jitter = 1.0 + config_.backoff_jitter * rng.uniform(-1.0, 1.0);
    decision.backoff_ms = std::max(1.0, backoff_ms(reattempt_index) * jitter);
  } else {
    decision.action = RecoveryAction::kFallbackToSource;
  }
  return decision;
}

}  // namespace tl::faults
