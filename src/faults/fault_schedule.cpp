#include "faults/fault_schedule.hpp"

namespace tl::faults {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kSectorOutage: return "sector outage";
    case FaultKind::kSiteOutage: return "site outage";
    case FaultKind::kSectorDegraded: return "sector degradation";
    case FaultKind::kRegionalBackhaulCut: return "regional backhaul cut";
    case FaultKind::kCoreOverloadStorm: return "core overload storm";
    case FaultKind::kVendorBugWave: return "vendor software-bug wave";
    case FaultKind::kSignalingStorm: return "signaling storm";
  }
  return "?";
}

bool FaultEvent::active_in_bin(int day, int bin) const noexcept {
  const util::TimestampMs bin_start = static_cast<util::TimestampMs>(day) * util::kMsPerDay +
                                      static_cast<util::TimestampMs>(bin) * 30 *
                                          util::kMsPerMinute;
  const util::TimestampMs bin_end = bin_start + 30 * util::kMsPerMinute;
  return start < bin_end && end > bin_start;
}

void FaultSchedule::add(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kSectorOutage:
    case FaultKind::kSiteOutage:
      outages_.push_back(event);
      break;
    default:
      modifiers_.push_back(event);
      break;
  }
}

void FaultSchedule::add(const std::vector<FaultEvent>& events) {
  for (const auto& e : events) add(e);
}

bool FaultSchedule::sector_out(topology::SectorId sector, topology::SiteId site,
                               util::TimestampMs t) const noexcept {
  for (const auto& e : outages_) {
    if (!e.active_at(t)) continue;
    if (e.kind == FaultKind::kSectorOutage && e.sector == sector) return true;
    if (e.kind == FaultKind::kSiteOutage && e.site == site) return true;
  }
  return false;
}

bool FaultSchedule::forced_off(const topology::RadioSector& sector, int day,
                               int half_hour_bin) const noexcept {
  for (const auto& e : outages_) {
    if (!e.active_in_bin(day, half_hour_bin)) continue;
    if (e.kind == FaultKind::kSectorOutage && e.sector == sector.id) return true;
    if (e.kind == FaultKind::kSiteOutage && e.site == sector.site) return true;
  }
  return false;
}

double FaultSchedule::hof_multiplier(topology::SectorId source_sector,
                                     topology::Vendor vendor, geo::Region region,
                                     util::TimestampMs t) const noexcept {
  double multiplier = 1.0;
  for (const auto& e : modifiers_) {
    if (!e.active_at(t)) continue;
    switch (e.kind) {
      case FaultKind::kSectorDegraded:
        if (e.sector == source_sector) multiplier *= e.hof_multiplier;
        break;
      case FaultKind::kRegionalBackhaulCut:
      case FaultKind::kCoreOverloadStorm:
        if (e.region == region) multiplier *= e.hof_multiplier;
        break;
      case FaultKind::kVendorBugWave:
        if (e.vendor == vendor) multiplier *= e.hof_multiplier;
        break;
      case FaultKind::kSignalingStorm:
        // Storms act through the overload boost only.
        break;
      default:
        break;
    }
  }
  return multiplier;
}

double FaultSchedule::overload_boost(geo::Region region,
                                     util::TimestampMs t) const noexcept {
  double boost = 0.0;
  for (const auto& e : modifiers_) {
    if (!e.active_at(t)) continue;
    if ((e.kind == FaultKind::kSignalingStorm || e.kind == FaultKind::kCoreOverloadStorm) &&
        e.region == region) {
      boost += e.overload_boost;
    }
  }
  return boost;
}

}  // namespace tl::faults
