#pragma once

// Deterministic fault-injection schedule.
//
// The paper's §6 is about *failure*: HOF causes cluster in sector-day
// incidents (Table 6 / Fig. 16) rather than spreading evenly. This module
// lets a study script those incidents — sector and site outages, regional
// backhaul cuts, core-entity overload storms, vendor software-bug waves,
// paging/signaling storms — as explicit time-windowed events. The simulator
// hot path consults the active schedule (FailureModel for HOF inflation,
// EnergySavingPolicy/locate_sector for sector availability, the load path
// for overload boosts), so injected faults flow into records, causes and
// durations exactly like organic ones.
//
// An empty schedule is free: every query short-circuits on empty(), so runs
// without faults are byte-identical to a build without this subsystem.

#include <cstdint>
#include <vector>

#include "geo/region.hpp"
#include "topology/energy_saving.hpp"
#include "topology/sector.hpp"
#include "topology/vendor.hpp"
#include "util/sim_time.hpp"

namespace tl::faults {

enum class FaultKind : std::uint8_t {
  /// One radio sector off-air (hardware failure, fiber cut to the head).
  kSectorOutage = 0,
  /// Every sector on a cell site off-air (power loss, site backhaul cut).
  kSiteOutage,
  /// One sector stays on-air but its HOF probability is inflated (the
  /// Table 6 sector-day incident shape: a bad day, not a dead sector).
  kSectorDegraded,
  /// Regional transport degradation: all HOs sourced in the region fail
  /// more often (timeouts on the relocation path).
  kRegionalBackhaulCut,
  /// Core-entity (MME/SGW pool) overload: regional HOF inflation plus an
  /// overload boost that steers failures toward Cause #4.
  kCoreOverloadStorm,
  /// A software regression on one vendor's RAN fleet: vendor-wide HOF
  /// multiplier for the duration of the wave.
  kVendorBugWave,
  /// Paging/signaling storm: regional target-overload boost (more
  /// "target load too high" rejections) without a direct HOF multiplier.
  kSignalingStorm,
};

const char* to_string(FaultKind kind) noexcept;

/// One scripted incident. `start`/`end` bound the window as [start, end) in
/// study milliseconds; the scope fields that apply depend on `kind`.
struct FaultEvent {
  FaultKind kind = FaultKind::kSectorOutage;
  util::TimestampMs start = 0;
  util::TimestampMs end = 0;

  // Scope selectors (only the ones the kind needs are read).
  topology::SectorId sector = topology::kInvalidSector;
  topology::SiteId site = topology::kInvalidSite;
  geo::Region region = geo::Region::kCapital;
  topology::Vendor vendor = topology::Vendor::kV1;

  /// Multiplies the per-HO failure probability for matching attempts.
  double hof_multiplier = 1.0;
  /// Added to the target-overload rejection probability for matching
  /// attempts (clamped to [0,1] by the consumer).
  double overload_boost = 0.0;

  bool active_at(util::TimestampMs t) const noexcept { return t >= start && t < end; }
  /// Whether the window overlaps half-hour bin `bin` of day `day`.
  bool active_in_bin(int day, int bin) const noexcept;
};

/// The assembled schedule. Events are partitioned into availability events
/// (outages, consulted per sector lookup) and modifier events (HOF
/// multipliers / overload boosts, consulted per HO attempt) so each hot-path
/// query scans only the relevant — typically tiny — list.
class FaultSchedule final : public topology::SectorAvailabilityOverride {
 public:
  FaultSchedule() = default;

  void add(const FaultEvent& event);
  void add(const std::vector<FaultEvent>& events);

  bool empty() const noexcept { return outages_.empty() && modifiers_.empty(); }
  std::size_t size() const noexcept { return outages_.size() + modifiers_.size(); }

  /// True when an outage event covers `sector` (directly or via its site)
  /// at exact time `t`.
  bool sector_out(topology::SectorId sector, topology::SiteId site,
                  util::TimestampMs t) const noexcept;

  /// topology::SectorAvailabilityOverride: bin-granular availability, as the
  /// energy-saving policy (and through it the serving-sector lookup) sees
  /// it. A sector is forced off for every bin its outage window overlaps.
  bool forced_off(const topology::RadioSector& sector, int day,
                  int half_hour_bin) const noexcept override;

  /// Product of the HOF multipliers of every modifier event active at `t`
  /// whose scope matches the attempt (source sector / vendor / region).
  double hof_multiplier(topology::SectorId source_sector, topology::Vendor vendor,
                        geo::Region region, util::TimestampMs t) const noexcept;

  /// Sum of the overload boosts of every modifier event active at `t`
  /// scoped to `region`. Caller clamps the boosted overload to [0, 1].
  double overload_boost(geo::Region region, util::TimestampMs t) const noexcept;

  const std::vector<FaultEvent>& outages() const noexcept { return outages_; }
  const std::vector<FaultEvent>& modifiers() const noexcept { return modifiers_; }

 private:
  std::vector<FaultEvent> outages_;
  std::vector<FaultEvent> modifiers_;
};

}  // namespace tl::faults
