#pragma once

// UE recovery after a handover failure.
//
// The paper observes outcomes, not the UE's reaction; real stacks are built
// around the error path ("On any error or timeout -> handover_end(fail), MS
// continues on the old lchan" — osmo-bsc). Per 3GPP TS 36.331, T304 expiry
// during HO execution triggers RRC re-establishment: the UE either
// re-establishes toward the (still strongest) target cell and the network
// re-attempts the handover, or falls back to the source cell and carries on.
// This module models that choice plus capped exponential backoff between
// re-attempts and temporary barring of a target that keeps failing — making
// retry chains and failure-driven ping-pong measurable in the record stream.
//
// Disabled by default (`RecoveryConfig::enabled == false`): the stock
// pipeline consumes no extra RNG draws and emits byte-identical output.

#include <cstdint>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl::faults {

enum class RecoveryAction : std::uint8_t {
  /// RRC re-establishment toward the failed target; the HO is re-attempted
  /// after the backoff delay.
  kReestablishTarget = 0,
  /// The UE falls back to (stays on) the source cell; the retry chain ends.
  kFallbackToSource,
};

struct RecoveryConfig {
  bool enabled = false;
  /// Probability that re-establishment lands on the failed target (which is
  /// usually still the strongest neighbor) vs falling back to the source.
  double p_reattempt_target = 0.6;
  /// Maximum HO re-attempts per failed opportunity (after the initial try).
  int max_reattempts = 3;
  /// Capped exponential backoff before re-attempt k (1-based):
  /// min(base * factor^(k-1), cap), jittered by +/- `backoff_jitter`.
  /// The base approximates T310 failure detection + re-establishment delay.
  double backoff_base_ms = 150.0;
  double backoff_factor = 2.0;
  double backoff_cap_ms = 2'000.0;
  double backoff_jitter = 0.25;
  /// After an exhausted retry chain the UE bars the target sector for this
  /// long (conn-establishment-failure-control style), 0 disables barring.
  std::int64_t bar_failed_target_ms = 30'000;
};

struct RecoveryDecision {
  RecoveryAction action = RecoveryAction::kFallbackToSource;
  /// Delay before the re-attempt (meaningful for kReestablishTarget).
  double backoff_ms = 0.0;
};

class RecoveryModel {
 public:
  explicit RecoveryModel(const RecoveryConfig& config = {}) : config_(config) {}

  /// Decision for re-attempt `reattempt_index` (1-based). Draws from `rng`
  /// only when called, so disabled recovery perturbs nothing.
  RecoveryDecision decide(int reattempt_index, util::Rng& rng) const noexcept;

  /// Deterministic pre-jitter backoff for re-attempt `reattempt_index`
  /// (1-based); capped at `backoff_cap_ms`.
  double backoff_ms(int reattempt_index) const noexcept;

  const RecoveryConfig& config() const noexcept { return config_; }

 private:
  RecoveryConfig config_;
};

}  // namespace tl::faults
