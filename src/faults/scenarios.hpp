#pragma once

// Composable incident scripting on top of the raw FaultEvent schedule.
//
// Builders return single events with operationally sensible defaults (an
// MME storm both inflates HOFs and boosts overload; a bug wave only
// inflates); a Scenario bundles named events so drills can be described,
// printed and replayed. `sector_day_incidents` generates a seeded random
// incident mix across a deployment — the generator counterpart of the
// paper's observation that failures concentrate in sector-day incidents.

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "topology/deployment.hpp"

namespace tl::faults {

/// Study timestamp for `hour` (fractional) of day `day`.
constexpr util::TimestampMs at_hour(int day, double hour) noexcept {
  return static_cast<util::TimestampMs>(day) * util::kMsPerDay +
         static_cast<util::TimestampMs>(hour * static_cast<double>(util::kMsPerHour));
}

FaultEvent sector_outage(topology::SectorId sector, util::TimestampMs start,
                         util::TimestampMs end);
FaultEvent site_outage(topology::SiteId site, util::TimestampMs start,
                       util::TimestampMs end);
FaultEvent sector_degradation(topology::SectorId sector, util::TimestampMs start,
                              util::TimestampMs end, double hof_multiplier = 25.0);
FaultEvent backhaul_cut(geo::Region region, util::TimestampMs start,
                        util::TimestampMs end, double hof_multiplier = 6.0);
FaultEvent core_overload_storm(geo::Region region, util::TimestampMs start,
                               util::TimestampMs end, double hof_multiplier = 3.0,
                               double overload_boost = 0.35);
FaultEvent vendor_bug_wave(topology::Vendor vendor, util::TimestampMs start,
                           util::TimestampMs end, double hof_multiplier = 5.0);
FaultEvent signaling_storm(geo::Region region, util::TimestampMs start,
                           util::TimestampMs end, double overload_boost = 0.5);

/// A named, composable bundle of incidents.
struct Scenario {
  std::string name;
  std::string description;
  std::vector<FaultEvent> events;

  Scenario& add(const FaultEvent& event) {
    events.push_back(event);
    return *this;
  }
  Scenario& merge(const Scenario& other);
  /// Installs every event into `schedule`.
  void install(FaultSchedule& schedule) const { schedule.add(events); }
};

/// Seeded random sector-day incident mix over a deployment: each study day,
/// `incidents_per_day` sectors (in expectation) suffer either a multi-hour
/// outage or a day-long degradation. Deterministic in (deployment, seed).
Scenario sector_day_incidents(const topology::Deployment& deployment, int days,
                              double incidents_per_day, std::uint64_t seed,
                              double outage_share = 0.3,
                              double degraded_hof_multiplier = 25.0);

/// Canned single-sector incident drill: a scripted outage of `sector` over
/// [start_hour, end_hour) of `day` — the before/during/after shape the
/// incident_drill example and the fault tests measure.
Scenario single_sector_drill(topology::SectorId sector, int day, double start_hour,
                             double end_hour);

}  // namespace tl::faults
