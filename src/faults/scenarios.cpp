#include "faults/scenarios.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace tl::faults {

FaultEvent sector_outage(topology::SectorId sector, util::TimestampMs start,
                         util::TimestampMs end) {
  FaultEvent e;
  e.kind = FaultKind::kSectorOutage;
  e.sector = sector;
  e.start = start;
  e.end = end;
  return e;
}

FaultEvent site_outage(topology::SiteId site, util::TimestampMs start,
                       util::TimestampMs end) {
  FaultEvent e;
  e.kind = FaultKind::kSiteOutage;
  e.site = site;
  e.start = start;
  e.end = end;
  return e;
}

FaultEvent sector_degradation(topology::SectorId sector, util::TimestampMs start,
                              util::TimestampMs end, double hof_multiplier) {
  FaultEvent e;
  e.kind = FaultKind::kSectorDegraded;
  e.sector = sector;
  e.start = start;
  e.end = end;
  e.hof_multiplier = hof_multiplier;
  return e;
}

FaultEvent backhaul_cut(geo::Region region, util::TimestampMs start,
                        util::TimestampMs end, double hof_multiplier) {
  FaultEvent e;
  e.kind = FaultKind::kRegionalBackhaulCut;
  e.region = region;
  e.start = start;
  e.end = end;
  e.hof_multiplier = hof_multiplier;
  return e;
}

FaultEvent core_overload_storm(geo::Region region, util::TimestampMs start,
                               util::TimestampMs end, double hof_multiplier,
                               double overload_boost) {
  FaultEvent e;
  e.kind = FaultKind::kCoreOverloadStorm;
  e.region = region;
  e.start = start;
  e.end = end;
  e.hof_multiplier = hof_multiplier;
  e.overload_boost = overload_boost;
  return e;
}

FaultEvent vendor_bug_wave(topology::Vendor vendor, util::TimestampMs start,
                           util::TimestampMs end, double hof_multiplier) {
  FaultEvent e;
  e.kind = FaultKind::kVendorBugWave;
  e.vendor = vendor;
  e.start = start;
  e.end = end;
  e.hof_multiplier = hof_multiplier;
  return e;
}

FaultEvent signaling_storm(geo::Region region, util::TimestampMs start,
                           util::TimestampMs end, double overload_boost) {
  FaultEvent e;
  e.kind = FaultKind::kSignalingStorm;
  e.region = region;
  e.start = start;
  e.end = end;
  e.overload_boost = overload_boost;
  return e;
}

Scenario& Scenario::merge(const Scenario& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  return *this;
}

Scenario sector_day_incidents(const topology::Deployment& deployment, int days,
                              double incidents_per_day, std::uint64_t seed,
                              double outage_share, double degraded_hof_multiplier) {
  Scenario scenario;
  scenario.name = "sector-day-incidents";
  scenario.description = "seeded random mix of sector outages and day-long degradations";

  const auto& sectors = deployment.sectors();
  if (sectors.empty() || days <= 0 || incidents_per_day <= 0.0) return scenario;

  util::Rng rng = util::Rng::derive(seed, 0xfa17u);
  for (int day = 0; day < days; ++day) {
    // Poisson-ish incident count via independent thinning of a 2x budget;
    // keeps the draw count bounded and the schedule deterministic in seed.
    const int budget = std::max(1, static_cast<int>(incidents_per_day * 2.0));
    for (int i = 0; i < budget; ++i) {
      if (!rng.chance(incidents_per_day / static_cast<double>(budget))) continue;
      const auto idx = static_cast<std::size_t>(rng.below(sectors.size()));
      const topology::SectorId sector = sectors[idx].id;
      if (rng.chance(outage_share)) {
        const double start_hour = rng.uniform(0.0, 20.0);
        const double duration_h = rng.uniform(1.0, 4.0);
        scenario.add(sector_outage(sector, at_hour(day, start_hour),
                                   at_hour(day, start_hour + duration_h)));
      } else {
        scenario.add(sector_degradation(sector, at_hour(day, 0.0), at_hour(day + 1, 0.0),
                                        degraded_hof_multiplier));
      }
    }
  }
  return scenario;
}

Scenario single_sector_drill(topology::SectorId sector, int day, double start_hour,
                             double end_hour) {
  Scenario scenario;
  scenario.name = "single-sector-drill";
  scenario.description = "scripted outage of one sector inside one day";
  scenario.add(sector_outage(sector, at_hour(day, start_hour), at_hour(day, end_hour)));
  return scenario;
}

}  // namespace tl::faults
