#include "topology/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace tl::topology {

namespace {

using tl::util::Rng;

/// Deployment year ranges per RAT, matching Fig. 3a's rollout history.
int sample_deploy_year(Rat rat, Rng& rng) {
  switch (rat) {
    case Rat::kG2: return static_cast<int>(rng.between(1998, 2008));
    case Rat::kG3: return static_cast<int>(rng.between(2009, 2014));
    case Rat::kG4: {
      // 4G rollout accelerates: quadratic-biased draw toward recent years
      // yields the exponential-looking total growth of Fig. 3a.
      const double u = rng.uniform();
      return 2013 + static_cast<int>(std::floor(std::pow(u, 0.55) * 10.0));  // 2013..2022
    }
    case Rat::kG5Nr: return static_cast<int>(rng.between(2019, 2023));
  }
  return 2015;
}

}  // namespace

Deployment Deployment::build(const geo::Country& country, const DeploymentConfig& config) {
  if (config.scale <= 0.0 || config.scale > 1.0) {
    throw std::invalid_argument{"DeploymentConfig: scale must be in (0, 1]"};
  }
  const double share_sum =
      config.share_2g + config.share_3g + config.share_4g + config.share_5g;
  if (std::fabs(share_sum - 1.0) > 0.02) {
    throw std::invalid_argument{"DeploymentConfig: RAT shares must sum to ~1"};
  }

  Deployment dep{country.width_km(), country.height_km()};
  Rng rng = Rng::derive(config.seed, 0xd390u);

  const auto n_sites = static_cast<std::uint32_t>(
      std::max(64.0, config.scale * static_cast<double>(config.full_scale_sites)));

  // --- Allocate sites to postcodes: urban sites follow population, rural
  // sites follow territory (coverage-driven), split 80/20 as in the paper. --
  const auto postcodes = country.postcodes();
  std::vector<double> urban_weight(postcodes.size(), 0.0);
  std::vector<double> rural_weight(postcodes.size(), 0.0);
  for (std::size_t i = 0; i < postcodes.size(); ++i) {
    const auto& pc = postcodes[i];
    if (pc.area_type() == geo::AreaType::kUrban) {
      urban_weight[i] = std::pow(static_cast<double>(pc.residents), 0.92);
    } else {
      rural_weight[i] = pc.area_km2 + 0.002 * static_cast<double>(pc.residents);
    }
  }
  const auto n_urban_sites =
      static_cast<std::uint32_t>(config.urban_sector_share * n_sites);
  const auto n_rural_sites = n_sites - n_urban_sites;

  tl::util::DiscreteSampler urban_sampler{urban_weight};
  tl::util::DiscreteSampler rural_sampler{rural_weight};

  std::vector<geo::PostcodeId> site_postcode;
  site_postcode.reserve(n_sites);
  for (std::uint32_t i = 0; i < n_urban_sites; ++i) {
    site_postcode.push_back(static_cast<geo::PostcodeId>(urban_sampler.sample(rng)));
  }
  for (std::uint32_t i = 0; i < n_rural_sites; ++i) {
    site_postcode.push_back(static_cast<geo::PostcodeId>(rural_sampler.sample(rng)));
  }

  // --- Materialize sites. ----------------------------------------------------
  dep.sites_.reserve(n_sites);
  for (std::uint32_t i = 0; i < n_sites; ++i) {
    const auto& pc = country.postcode(site_postcode[i]);
    const auto& district = country.district_of(pc);
    CellSite site;
    site.id = i;
    site.postcode = pc.id;
    site.district = district.id;
    site.region = district.region;
    site.area_type = pc.area_type();
    const double scatter = std::sqrt(std::max(pc.area_km2, 0.05)) / 2.0;
    site.location = {pc.centroid.x_km + rng.normal(0.0, scatter),
                     pc.centroid.y_km + rng.normal(0.0, scatter)};
    site.location.x_km = std::clamp(site.location.x_km, 0.0, country.width_km());
    site.location.y_km = std::clamp(site.location.y_km, 0.0, country.height_km());
    const auto weights = vendor_weights(site.region);
    site.vendor = static_cast<Vendor>(
        tl::util::DiscreteSampler{weights}.sample(rng));
    dep.sites_.push_back(std::move(site));
  }

  // --- RAT layers per site. ---------------------------------------------------
  // Every site carries a 4G layer; legacy and 5G layers are sampled so the
  // global sector shares land on the configured mix. Propensities skew 2G/3G
  // toward rural sites and 5G toward dense urban ones.
  const auto layer_propensity = [&](Rat rat, const CellSite& site) -> double {
    const auto& pc = country.postcode(site.postcode);
    switch (rat) {
      case Rat::kG2:
      case Rat::kG3:
        return site.area_type == geo::AreaType::kRural ? 1.9 : 0.8;
      case Rat::kG5Nr:
        return site.area_type == geo::AreaType::kUrban
                   ? std::min(pc.population_density(), 12'000.0)
                   : 0.0;
      case Rat::kG4:
        return 1.0;
    }
    return 0.0;
  };

  const auto expected_layers = [&](double share) {
    return share / config.share_4g * static_cast<double>(n_sites);
  };

  std::array<double, 4> propensity_sum{};
  for (const auto& site : dep.sites_) {
    for (const Rat rat : {Rat::kG2, Rat::kG3, Rat::kG5Nr}) {
      propensity_sum[static_cast<std::size_t>(rat)] += layer_propensity(rat, site);
    }
  }
  const std::array<double, 4> layer_target{
      expected_layers(config.share_2g), expected_layers(config.share_3g), 0.0,
      expected_layers(config.share_5g)};

  SectorId next_sector = 0;
  Rng layer_rng = Rng::derive(config.seed, 0x1a7e25u);
  const auto add_layer = [&](CellSite& site, Rat rat) {
    // Tri-sector layer; dense urban 4G/5G sites add extra carriers.
    int n_sec = 3;
    if (site.area_type == geo::AreaType::kUrban &&
        (rat == Rat::kG4 || rat == Rat::kG5Nr)) {
      n_sec += static_cast<int>(layer_rng.below(4));  // 3..6
    } else if (layer_rng.chance(0.15)) {
      n_sec = 2;  // small rural installation
    }
    for (int s = 0; s < n_sec; ++s) {
      RadioSector sector;
      sector.id = next_sector++;
      sector.site = site.id;
      sector.rat = rat;
      sector.vendor = site.vendor;
      sector.postcode = site.postcode;
      sector.district = site.district;
      sector.region = site.region;
      sector.area_type = site.area_type;
      sector.azimuth_deg = static_cast<float>(
          std::fmod(120.0 * s + layer_rng.uniform(-20.0, 20.0) + 360.0, 360.0));
      sector.deploy_year = static_cast<std::uint16_t>(sample_deploy_year(rat, layer_rng));
      sector.capacity_booster =
          layer_rng.chance(site.area_type == geo::AreaType::kUrban ? 0.28 : 0.05);
      sector.capacity = static_cast<float>(std::exp(layer_rng.normal(0.0, 0.35)));
      site.sectors.push_back(sector.id);
      dep.sectors_.push_back(std::move(sector));
    }
  };

  // Density rank per district (0 = densest, 1 = sparsest): the 4G upgrade
  // reached the remotest districts last, so legacy-only sites concentrate
  // there — the source of Fig. 9b's least-dense-district fallback extremes.
  std::vector<std::pair<double, geo::DistrictId>> density_rank;
  for (const auto& d : country.districts()) {
    density_rank.emplace_back(d.population_density(), d.id);
  }
  std::sort(density_rank.begin(), density_rank.end());
  std::vector<double> sparseness(country.districts().size(), 0.0);
  for (std::size_t i = 0; i < density_rank.size(); ++i) {
    sparseness[density_rank[i].second] =
        1.0 - static_cast<double>(i) / static_cast<double>(density_rank.size() - 1);
  }

  for (auto& site : dep.sites_) {
    // A slice of rural sites never got the 4G upgrade: 2G/3G coverage-only
    // installations that force fallbacks in the surrounding postcodes,
    // heavily skewed toward the sparsest districts.
    const double rank = sparseness[site.district];
    const double p_legacy =
        config.rural_legacy_site_share * (0.2 + 2.6 * rank * rank * rank);
    if (site.area_type == geo::AreaType::kRural && layer_rng.chance(p_legacy)) {
      add_layer(site, Rat::kG2);
      add_layer(site, Rat::kG3);
      continue;
    }
    add_layer(site, Rat::kG4);
    for (const Rat rat : {Rat::kG2, Rat::kG3, Rat::kG5Nr}) {
      const auto idx = static_cast<std::size_t>(rat);
      if (propensity_sum[idx] <= 0.0) continue;
      const double p =
          std::min(1.0, layer_target[idx] * layer_propensity(rat, site) /
                            propensity_sum[idx]);
      if (layer_rng.chance(p)) add_layer(site, rat);
    }
  }

  // --- Historical ledger: 2G/3G sectors retired before the study, so the
  // Fig. 3a curve shows the legacy peak and gradual decommissioning. --------
  Rng ledger_rng = Rng::derive(config.seed, 0x9057u);
  for (const auto& sector : dep.sectors_) {
    if (sector.rat != Rat::kG2 && sector.rat != Rat::kG3) continue;
    // Each surviving legacy sector stands for ~0.75 already-retired peers.
    if (!ledger_rng.chance(0.75)) continue;
    RadioSector ghost = sector;
    ghost.id = 0;  // not addressable; evolution-only
    ghost.deploy_year = static_cast<std::uint16_t>(
        sample_deploy_year(sector.rat, ledger_rng));
    ghost.decommission_year =
        static_cast<std::uint16_t>(ledger_rng.between(2016, 2023));
    dep.retired_sectors_.push_back(std::move(ghost));
  }

  // --- Indexes and tallies. ----------------------------------------------------
  dep.sectors_by_postcode_.resize(postcodes.size());
  for (const auto& sector : dep.sectors_) {
    dep.by_rat_[static_cast<std::size_t>(sector.rat)]++;
    if (sector.area_type == geo::AreaType::kUrban) ++dep.urban_sectors_;
    dep.sectors_by_postcode_[sector.postcode].push_back(sector.id);
  }
  for (const auto& site : dep.sites_) {
    dep.site_index_.insert(site.location, site.id);
  }
  return dep;
}

std::span<const SectorId> Deployment::sectors_in_postcode(geo::PostcodeId pc) const {
  return sectors_by_postcode_.at(pc);
}

double Deployment::urban_sector_fraction() const noexcept {
  return sectors_.empty()
             ? 0.0
             : static_cast<double>(urban_sectors_) / static_cast<double>(sectors_.size());
}

std::vector<Deployment::YearCounts> Deployment::evolution(int from_year,
                                                          int to_year) const {
  std::vector<YearCounts> out;
  for (int year = from_year; year <= to_year; ++year) {
    YearCounts yc;
    yc.year = year;
    for (const auto& sector : sectors_) {
      if (sector.live_in(year)) yc.by_rat[static_cast<std::size_t>(sector.rat)]++;
    }
    for (const auto& sector : retired_sectors_) {
      if (sector.live_in(year)) yc.by_rat[static_cast<std::size_t>(sector.rat)]++;
    }
    out.push_back(yc);
  }
  return out;
}

}  // namespace tl::topology
