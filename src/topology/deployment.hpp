#pragma once

// The MNO's radio deployment: builds cell sites and sectors over a country,
// calibrated to the paper's topology facts — RAT mix (5G 8.4% / 4G 55% /
// 2G+3G ≈36%), 80% of sectors in urban postcodes, vendor asymmetry across
// regions, and the 2009–2023 deployment-evolution curve of Fig. 3a.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/country.hpp"
#include "geo/spatial_index.hpp"
#include "topology/sector.hpp"

namespace tl::topology {

struct DeploymentConfig {
  /// Linear scale vs the real deployment (1.0 = 24k sites / 350k+ sectors).
  double scale = 0.05;
  std::uint32_t full_scale_sites = 24'000;

  /// Live sector shares per RAT at the study date (Fig. 3a, end of 2023).
  double share_2g = 0.18;
  double share_3g = 0.18;
  double share_4g = 0.55;
  double share_5g = 0.084;

  /// Fraction of sectors installed in urban postcodes (paper: 80%).
  double urban_sector_share = 0.80;

  /// Fraction of rural sites that are legacy-only (2G/3G, no 4G layer) —
  /// the coverage holes behind Fig. 9b's remote districts where up to
  /// 58.1% of HOs fall back to 3G.
  double rural_legacy_site_share = 0.14;

  std::uint64_t seed = 11;
};

class Deployment {
 public:
  static Deployment build(const geo::Country& country, const DeploymentConfig& config);

  std::span<const CellSite> sites() const noexcept { return sites_; }
  std::span<const RadioSector> sectors() const noexcept { return sectors_; }
  const RadioSector& sector(SectorId id) const { return sectors_.at(id); }
  const CellSite& site(SiteId id) const { return sites_.at(id); }

  /// Spatial index over site locations.
  const geo::SpatialIndex& site_index() const noexcept { return site_index_; }

  /// Live sectors whose site lies in the given postcode.
  std::span<const SectorId> sectors_in_postcode(geo::PostcodeId pc) const;

  /// Sector counts per RAT among live sectors.
  std::array<std::uint64_t, 4> sector_count_by_rat() const noexcept { return by_rat_; }
  std::uint64_t live_sector_count() const noexcept { return sectors_.size(); }

  /// Fraction of live sectors in urban postcodes.
  double urban_sector_fraction() const noexcept;

  /// Fig. 3a: live sector counts per RAT for each calendar year, including
  /// since-retired 2G/3G sectors tracked in the historical ledger.
  struct YearCounts {
    int year = 0;
    std::array<std::uint64_t, 4> by_rat{};  // indexed by Rat
    std::uint64_t total() const noexcept {
      return by_rat[0] + by_rat[1] + by_rat[2] + by_rat[3];
    }
  };
  std::vector<YearCounts> evolution(int from_year = 2009, int to_year = 2023) const;

 private:
  Deployment(double width_km, double height_km)
      : site_index_(width_km, height_km, 6.0) {}

  std::vector<CellSite> sites_;
  std::vector<RadioSector> sectors_;
  /// 2G/3G sectors already decommissioned before the study; they only count
  /// toward the historical evolution curve.
  std::vector<RadioSector> retired_sectors_;
  std::vector<std::vector<SectorId>> sectors_by_postcode_;
  geo::SpatialIndex site_index_;
  std::array<std::uint64_t, 4> by_rat_{};
  std::uint64_t urban_sectors_ = 0;
};

}  // namespace tl::topology
