#pragma once

// Radio access technologies. The study window catches all digital RATs of
// the last three decades operating concurrently (2G, 3G, 4G, 5G-NR in NSA
// mode). From the EPC's mobility-management viewpoint, 4G and 5G-NSA are
// indistinguishable ("4G/5G-NSA"), which the ObservedRat type encodes.

#include <array>
#include <cstdint>
#include <string_view>

namespace tl::topology {

/// Ground-truth technology of a radio sector.
enum class Rat : std::uint8_t {
  kG2 = 0,
  kG3,
  kG4,
  kG5Nr,  // 5G New Radio, NSA deployment (anchored to a 4G EPC)
};

inline constexpr std::array<Rat, 4> kAllRats{Rat::kG2, Rat::kG3, Rat::kG4, Rat::kG5Nr};

constexpr std::string_view to_string(Rat rat) noexcept {
  switch (rat) {
    case Rat::kG2: return "2G";
    case Rat::kG3: return "3G";
    case Rat::kG4: return "4G";
    case Rat::kG5Nr: return "5G-NR";
  }
  return "?";
}

/// What the 4G EPC's MME records for a sector: 5G-NSA events surface behind
/// their 4G anchor, so 4G and 5G-NR collapse into one observed class.
enum class ObservedRat : std::uint8_t {
  kG2 = 0,
  kG3,
  kG45Nsa,  // "4G/5G-NSA"
};

constexpr ObservedRat observe(Rat rat) noexcept {
  switch (rat) {
    case Rat::kG2: return ObservedRat::kG2;
    case Rat::kG3: return ObservedRat::kG3;
    case Rat::kG4:
    case Rat::kG5Nr: return ObservedRat::kG45Nsa;
  }
  return ObservedRat::kG45Nsa;
}

constexpr std::string_view to_string(ObservedRat rat) noexcept {
  switch (rat) {
    case ObservedRat::kG2: return "2G";
    case ObservedRat::kG3: return "3G";
    case ObservedRat::kG45Nsa: return "4G/5G-NSA";
  }
  return "?";
}

/// Highest RAT a device can attach to (device capability, Fig. 4b).
enum class RatSupport : std::uint8_t {
  kUpTo2G = 0,
  kUpTo3G,
  kUpTo4G,
  kUpTo5G,
};

constexpr std::string_view to_string(RatSupport s) noexcept {
  switch (s) {
    case RatSupport::kUpTo2G: return "2G";
    case RatSupport::kUpTo3G: return "3G";
    case RatSupport::kUpTo4G: return "4G";
    case RatSupport::kUpTo5G: return "5G";
  }
  return "?";
}

constexpr bool supports(RatSupport s, Rat rat) noexcept {
  switch (rat) {
    case Rat::kG2: return true;
    case Rat::kG3: return s >= RatSupport::kUpTo3G;
    case Rat::kG4: return s >= RatSupport::kUpTo4G;
    case Rat::kG5Nr: return s >= RatSupport::kUpTo5G;
  }
  return false;
}

}  // namespace tl::topology
