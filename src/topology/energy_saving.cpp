#include "topology/energy_saving.hpp"

#include "util/hash.hpp"

namespace tl::topology {

double EnergySavingPolicy::booster_sleep_fraction(int half_hour_bin) noexcept {
  // Piecewise daily shape, in fraction of the *booster* fleet asleep:
  //   00:00-06:00 deep night: most boosters off
  //   06:00-08:00 ramp-up to the morning peak
  //   08:00-17:00 plateau: effectively everything on (~99% of all sectors)
  //   17:00-24:00 gradual shutdown, ~1% of all sectors per 30 minutes
  constexpr double kNight = 0.72;
  constexpr double kPlateau = 0.03;
  constexpr double kMidnight = 0.56;
  if (half_hour_bin < 0 || half_hour_bin >= tl::util::kBinsPerDay30Min) return kNight;
  if (half_hour_bin < 12) return kNight;  // [00:00, 06:00)
  if (half_hour_bin < 16) {               // [06:00, 08:00): linear ramp
    const double f = (half_hour_bin - 12) / 4.0;
    return kNight + f * (kPlateau - kNight);
  }
  if (half_hour_bin < 34) return kPlateau;  // [08:00, 17:00)
  const double f = (half_hour_bin - 34) / 13.0;  // [17:00, 23:30]
  return kPlateau + f * (kMidnight - kPlateau);
}

bool EnergySavingPolicy::is_active(const RadioSector& sector, int day,
                                   int half_hour_bin) const noexcept {
  if (override_ != nullptr && override_->forced_off(sector, day, half_hour_bin)) {
    return false;
  }
  if (!sector.capacity_booster) return true;
  // Stable per-sector rank in [0,1): low-ranked boosters sleep first, so the
  // same sectors carry the overnight savings every day.
  const double rank =
      static_cast<double>(tl::util::anonymize(sector.id, seed_)) /
      static_cast<double>(~0ULL);
  return rank >= booster_sleep_fraction(half_hour_bin);
}

double EnergySavingPolicy::expected_active_fraction(double booster_share,
                                                    int half_hour_bin) noexcept {
  return 1.0 - booster_share * booster_sleep_fraction(half_hour_bin);
}

}  // namespace tl::topology
