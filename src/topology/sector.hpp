#pragma once

// Cell sites and radio sectors: the MNO's deployment footprint.

#include <cstdint>
#include <vector>

#include "geo/district.hpp"
#include "topology/rat.hpp"
#include "topology/vendor.hpp"
#include "util/geo_point.hpp"

namespace tl::topology {

using SiteId = std::uint32_t;
using SectorId = std::uint32_t;

/// Sentinel ids for "no such sector/site" lookups; every layer that can fail
/// to locate a sector (simulator serving chain, fault scopes, validators)
/// shares these instead of minting per-file duplicates.
inline constexpr SectorId kInvalidSector = 0xffffffffu;
inline constexpr SiteId kInvalidSite = 0xffffffffu;

struct CellSite {
  SiteId id = 0;
  tl::util::GeoPoint location;
  geo::PostcodeId postcode = 0;
  geo::DistrictId district = 0;
  geo::Region region = geo::Region::kNorth;
  geo::AreaType area_type = geo::AreaType::kRural;
  Vendor vendor = Vendor::kV1;
  std::vector<SectorId> sectors;
};

struct RadioSector {
  SectorId id = 0;
  SiteId site = 0;
  Rat rat = Rat::kG4;
  Vendor vendor = Vendor::kV1;
  geo::PostcodeId postcode = 0;
  geo::DistrictId district = 0;
  geo::Region region = geo::Region::kNorth;
  geo::AreaType area_type = geo::AreaType::kRural;
  /// Boresight azimuth in degrees (tri-sector sites: 0/120/240 + jitter).
  float azimuth_deg = 0.0f;
  std::uint16_t deploy_year = 2015;
  /// Year the sector is switched off (legacy sunset), or 0 if still live.
  std::uint16_t decommission_year = 0;
  /// Capacity boosters are eligible for overnight energy-saving shutdown.
  bool capacity_booster = false;
  /// Relative capacity (Erlang-like units) for the load model.
  float capacity = 1.0f;

  bool live_in(int year) const noexcept {
    return deploy_year <= year && (decommission_year == 0 || decommission_year > year);
  }
};

}  // namespace tl::topology
