#pragma once

// Antenna vendors. Four principal vendors (anonymized V1–V4 as in the
// paper) deploy asymmetrically across regions; vendor is a significant but
// secondary covariate of the HOF-rate models (Tables 5, 7; Fig. 17, 18).

#include <array>
#include <cstdint>
#include <string_view>

#include "geo/region.hpp"

namespace tl::topology {

enum class Vendor : std::uint8_t {
  kV1 = 0,
  kV2,
  kV3,
  kV4,
};

inline constexpr std::array<Vendor, 4> kAllVendors{Vendor::kV1, Vendor::kV2, Vendor::kV3,
                                                   Vendor::kV4};

constexpr std::string_view to_string(Vendor v) noexcept {
  switch (v) {
    case Vendor::kV1: return "V1";
    case Vendor::kV2: return "V2";
    case Vendor::kV3: return "V3";
    case Vendor::kV4: return "V4";
  }
  return "?";
}

/// Region-conditional vendor mix: each region has a dominant vendor with
/// the others mixed in, mirroring Fig. 17 (top).
constexpr std::array<double, 4> vendor_weights(geo::Region region) noexcept {
  switch (region) {
    case geo::Region::kCapital: return {0.62, 0.28, 0.06, 0.04};
    case geo::Region::kNorth: return {0.18, 0.64, 0.10, 0.08};
    case geo::Region::kSouth: return {0.46, 0.42, 0.07, 0.05};
    case geo::Region::kWest: return {0.12, 0.20, 0.55, 0.13};
  }
  return {0.25, 0.25, 0.25, 0.25};
}

/// Multiplicative effect of the vendor on the HOF rate (V3 markedly worse,
/// V1 baseline), calibrated against the Table 5/7 coefficients.
constexpr double vendor_hof_multiplier(Vendor v) noexcept {
  switch (v) {
    case Vendor::kV1: return 1.00;
    case Vendor::kV2: return 1.12;
    case Vendor::kV3: return 2.05;
    case Vendor::kV4: return 1.07;
  }
  return 1.0;
}

}  // namespace tl::topology
