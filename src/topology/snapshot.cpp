#include "topology/snapshot.hpp"

#include <ostream>
#include <string>

#include "util/csv.hpp"

namespace tl::topology {

std::size_t export_topology_csv(const Deployment& deployment, const geo::Country& country,
                                std::ostream& os, int year) {
  util::CsvWriter writer{os};
  writer.write_row({"sector_id", "site_id", "x_km", "y_km", "postcode", "district",
                    "rat", "vendor", "deploy_year", "area"});
  std::size_t rows = 0;
  for (const auto& sector : deployment.sectors()) {
    if (!sector.live_in(year)) continue;
    const auto& site = deployment.site(sector.site);
    writer.write_row({std::to_string(sector.id), std::to_string(sector.site),
                      std::to_string(site.location.x_km),
                      std::to_string(site.location.y_km),
                      std::to_string(sector.postcode), std::to_string(sector.district),
                      std::string{to_string(sector.rat)},
                      std::string{to_string(sector.vendor)},
                      std::to_string(sector.deploy_year),
                      std::string{geo::to_string(sector.area_type)}});
    ++rows;
  }
  (void)country;
  return rows;
}

std::size_t export_census_csv(const geo::Country& country, std::ostream& os) {
  util::CsvWriter writer{os};
  writer.write_row({"postcode", "district", "district_name", "region", "residents",
                    "area_km2", "class", "census_reliable"});
  std::size_t rows = 0;
  for (const auto& pc : country.postcodes()) {
    const auto& district = country.district_of(pc);
    writer.write_row({std::to_string(pc.id), std::to_string(pc.district), district.name,
                      std::string{geo::to_string(district.region)},
                      std::to_string(pc.residents), std::to_string(pc.area_km2),
                      std::string{geo::to_string(pc.area_type())},
                      pc.census_reliable ? "yes" : "no"});
    ++rows;
  }
  return rows;
}

}  // namespace tl::topology
