#pragma once

// Energy-saving sector activity (Fig. 7, bottom).
//
// MNOs switch off capacity-booster sectors when demand is low. The paper
// observes ~99% of sectors active from the 08:00 peak until 17:00, then a
// ~1% decline per 30 minutes until midnight, with the active-sector series
// correlating 0.9 with the HO series. This module decides, per sector and
// half-hour bin, whether the sector is serving.

#include <cstdint>

#include "topology/sector.hpp"
#include "util/sim_time.hpp"

namespace tl::topology {

/// External veto over sector availability: the fault-injection schedule
/// implements this so scripted outages flow through the same `is_active`
/// gate as organic energy saving (dependency-inverted — topology knows the
/// interface, faults provides the implementation).
class SectorAvailabilityOverride {
 public:
  virtual ~SectorAvailabilityOverride() = default;
  /// True when `sector` must be treated as off-air during this half-hour bin.
  virtual bool forced_off(const RadioSector& sector, int day,
                          int half_hour_bin) const noexcept = 0;
};

class EnergySavingPolicy {
 public:
  explicit EnergySavingPolicy(std::uint64_t seed = 0x5a5a) : seed_(seed) {}

  /// Installs (or clears, with nullptr) an availability veto; borrowed.
  void set_availability_override(const SectorAvailabilityOverride* override_hook) noexcept {
    override_ = override_hook;
  }
  const SectorAvailabilityOverride* availability_override() const noexcept {
    return override_;
  }

  /// Fraction of the booster fleet allowed to sleep in this half-hour bin
  /// (0 = all boosters on). Deterministic daily shape; identical for
  /// weekdays and weekends, as the paper observes.
  static double booster_sleep_fraction(int half_hour_bin) noexcept;

  /// Whether `sector` is active during `bin` of day `day`. Non-boosters are
  /// always active; boosters sleep pseudo-randomly but stably (the same
  /// sector keeps its shutdown slot across the study, keyed by sector id).
  bool is_active(const RadioSector& sector, int day, int half_hour_bin) const noexcept;

  /// Expected fraction of all sectors active given a booster share.
  static double expected_active_fraction(double booster_share, int half_hour_bin) noexcept;

 private:
  std::uint64_t seed_;
  const SectorAvailabilityOverride* override_ = nullptr;
};

}  // namespace tl::topology
