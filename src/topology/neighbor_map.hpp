#pragma once

// Neighbor relations between cell sites, the candidate set for handover
// targets. The HO decision consults the source site's neighbor list the way
// a RAN's neighbor-cell configuration would.

#include <cstdint>
#include <span>
#include <vector>

#include "topology/deployment.hpp"

namespace tl::topology {

class NeighborMap {
 public:
  /// Builds per-site neighbor lists of up to `max_neighbors` nearest sites.
  NeighborMap(const Deployment& deployment, std::size_t max_neighbors = 8);

  std::span<const SiteId> neighbors_of(SiteId site) const;

  /// Average neighbor-list length (diagnostics).
  double average_degree() const noexcept;

 private:
  std::vector<std::vector<SiteId>> neighbors_;
};

}  // namespace tl::topology
