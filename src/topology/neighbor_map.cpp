#include "topology/neighbor_map.hpp"

namespace tl::topology {

NeighborMap::NeighborMap(const Deployment& deployment, std::size_t max_neighbors) {
  const auto sites = deployment.sites();
  neighbors_.resize(sites.size());
  for (const auto& site : sites) {
    // nearest_k includes the site itself; request one extra and drop it.
    auto near = deployment.site_index().nearest_k(site.location, max_neighbors + 1);
    auto& list = neighbors_[site.id];
    list.reserve(max_neighbors);
    for (const SiteId id : near) {
      if (id != site.id && list.size() < max_neighbors) list.push_back(id);
    }
  }
}

std::span<const SiteId> NeighborMap::neighbors_of(SiteId site) const {
  return neighbors_.at(site);
}

double NeighborMap::average_degree() const noexcept {
  if (neighbors_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : neighbors_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(neighbors_.size());
}

}  // namespace tl::topology
