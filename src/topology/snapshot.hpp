#pragma once

// Radio-network-topology dataset export (§3.1): the paper captures a daily
// snapshot of every deployed sector — location, postcode, supported
// technology. This module renders the same dataset from a Deployment, for a
// given observation year (so the 2009-2023 history can be exported too).

#include <iosfwd>

#include "geo/country.hpp"
#include "topology/deployment.hpp"

namespace tl::topology {

/// Writes one row per sector live in `year`: sector id, site id, longitude/
/// latitude (plane km in the synthetic country), postcode, district, RAT,
/// vendor, deploy year, area class. Returns the number of rows written.
std::size_t export_topology_csv(const Deployment& deployment, const geo::Country& country,
                                std::ostream& os, int year = 2024);

/// Census-office companion dataset: one row per postcode with district,
/// residents, area and the urban/rural class. Returns rows written.
std::size_t export_census_csv(const geo::Country& country, std::ostream& os);

}  // namespace tl::topology
