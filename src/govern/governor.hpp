#pragma once

// Process-wide resource governance: memory budgets, pressure levels,
// backpressure, and seeded pressure injection.
//
// The operator-side pipeline this repo models (~8 TB/day of signaling) does
// not fail by crashing; it fails by *filling up*. The chaos work so far
// proves the system survives faults (kill/recover, EIO, torn writes) — this
// module is the overload counterpart: it turns memory pressure from an OOM
// kill into a deterministic, observable, certified-accuracy event.
//
// Pieces, and the determinism argument for each:
//
//  - MemoryBudget: a byte-accounted budget. Hot allocators (per-shard
//    RecordBuffers, the WAL day buffer, serve aggregates) register named
//    Accountants and report capacity deltas with relaxed atomics — the hot
//    path never locks. Pressure is read at control-plane boundaries as a
//    hysteretic level (Steady -> Elevated -> Critical): upgrades happen at
//    the threshold, downgrades only below threshold-minus-hysteresis, so a
//    usage hovering at a boundary cannot flap the level (and therefore
//    cannot flap any decision keyed on it).
//  - BackpressureGate: bounded hand-off between producing shards and the
//    ordered merge consumer. Producers of shard s block until
//    s < merged_floor + window; the consumer releases one slot per merged
//    shard. Because shards are submitted in ascending order to a FIFO pool
//    and the merge is already ascending, a window >= 1 can never deadlock,
//    and throttling changes *when* a shard runs but never the merge order —
//    throttled output is byte-identical to unthrottled at any thread count.
//  - PressurePlan: the pressure-injection seam, in the IoFaultPlan idiom.
//    A seeded schedule of budget clamps keyed to a deterministic tick
//    (serve mode ticks once per sealed day), so the same (seed, plan)
//    reproduces the same pressure history — and after a crash, restoring
//    the tick from recovered state replays the remainder identically.
//  - Degradation bookkeeping: allocation failures escalate straight to
//    Critical for a hold period (record_allocation_failure), which is what
//    lets the supervisor grant one degraded retry instead of thrashing.
//
// Like obs::MetricsRegistry, a process-global governor can be installed
// (set_global_governor bumps an epoch); components resolve Accountants at
// construction or at single-threaded boundaries. Everything is null-safe:
// with no governor installed, accounting is a no-op and pressure is Steady.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tl::govern {

enum class PressureLevel : std::uint8_t {
  kSteady = 0,    ///< comfortably under budget
  kElevated = 1,  ///< above elevated_fraction: shed optional detail
  kCritical = 2,  ///< above critical_fraction (or a real allocation failure)
};

const char* to_string(PressureLevel level) noexcept;

class MemoryBudget;

/// Byte-accounting handle into one named slot of a MemoryBudget. Trivially
/// copyable and null-safe: a default-constructed (or governor-less) handle
/// drops every operation. add/sub are relaxed atomics — safe from worker
/// threads. Callers track their own accounted total and report deltas; the
/// slot outlives the handle (deque storage, like obs families).
class Accountant {
 public:
  Accountant() = default;

  void add(std::uint64_t bytes) const noexcept;
  void sub(std::uint64_t bytes) const noexcept;
  bool live() const noexcept { return slot_ != nullptr; }
  /// Current bytes in this slot (all holders of the name combined).
  std::uint64_t bytes() const noexcept;

 private:
  friend class MemoryBudget;
  struct Slot;
  explicit Accountant(Slot* slot) : slot_(slot) {}
  Slot* slot_ = nullptr;
};

/// One scheduled budget clamp: from `tick` onward the effective budget is
/// `budget_bytes` (until a later clamp supersedes it). Ticks are advanced
/// by the component that owns the clock — serve mode ticks per sealed day —
/// so a plan replays identically across runs and restarts.
struct BudgetClamp {
  std::uint64_t tick = 0;
  std::uint64_t budget_bytes = 0;
};

/// Deterministic pressure-injection schedule, mirroring io::IoFaultPlan.
class PressurePlan {
 public:
  PressurePlan() = default;

  /// Clamps must be added in ascending tick order (asserted at set_plan).
  void add(std::uint64_t tick, std::uint64_t budget_bytes) {
    clamps_.push_back({tick, budget_bytes});
  }

  /// Seeded chaos plan: at each tick in [1, horizon_ticks], with probability
  /// `clamp_rate`, the budget is re-drawn uniformly in [floor_bytes,
  /// base_bytes] (occasionally restored to base). Same seed, same plan.
  static PressurePlan chaos(std::uint64_t seed, std::uint64_t horizon_ticks,
                            std::uint64_t base_bytes, std::uint64_t floor_bytes,
                            double clamp_rate = 0.35);

  /// The clamp in force at `tick` (largest scheduled tick <= tick), or
  /// nullptr when none has taken effect yet.
  const BudgetClamp* at(std::uint64_t tick) const noexcept;

  bool empty() const noexcept { return clamps_.empty(); }
  const std::vector<BudgetClamp>& clamps() const noexcept { return clamps_; }

 private:
  std::vector<BudgetClamp> clamps_;
};

/// The governor proper. Accountant traffic is lock-free; everything else
/// (level(), tick(), set_plan(), snapshot()) takes a small mutex and is
/// meant for control-plane call sites (day boundaries, run setup), not
/// per-record paths.
class MemoryBudget {
 public:
  struct Options {
    /// Total byte budget; 0 = unlimited (accounting only, always Steady).
    std::uint64_t budget_bytes = 0;
    /// Level thresholds as fractions of the effective budget.
    double elevated_fraction = 0.70;
    double critical_fraction = 0.90;
    /// Downgrade hysteresis: a level is left only when usage drops below
    /// threshold - hysteresis_fraction * budget.
    double hysteresis_fraction = 0.05;
    /// Ticks a real allocation failure pins the level at Critical.
    std::uint64_t alloc_failure_hold_ticks = 2;
  };

  MemoryBudget() : MemoryBudget(Options{}) {}
  explicit MemoryBudget(Options options);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Returns the accountant for `name`, creating the slot on first use.
  /// Idempotent by name: every caller of the same name shares one slot.
  Accountant accountant(const std::string& name);

  /// Total accounted bytes right now / high-water mark since construction.
  std::uint64_t used_bytes() const noexcept;
  std::uint64_t peak_bytes() const noexcept;

  /// Effective budget: Options::budget_bytes, overridden by the pressure
  /// plan's clamp in force at the current tick.
  std::uint64_t budget_bytes() const;

  /// Hysteretic pressure level (see file comment); also refreshes the
  /// tl_govern_* gauges. Deterministic given the same sequence of
  /// (used_bytes, budget, tick) observations.
  PressureLevel level();

  /// Installs the injection schedule (clamps must be tick-ascending;
  /// std::invalid_argument otherwise) and re-applies it at the current tick.
  void set_plan(PressurePlan plan);

  /// Advances the injection clock one tick.
  void tick();
  /// Restores the clock after a restart (e.g. to the recovered days_sealed
  /// count) so a plan's remainder replays exactly. Resets any
  /// allocation-failure hold — that state is process-local and died with
  /// the process.
  void set_tick(std::uint64_t tick);
  std::uint64_t ticks() const;

  /// Seeds the hysteresis memory after a restart, from recovered state
  /// (e.g. the degradation level a serve checkpoint carried), so the first
  /// post-restart decision sees the same previous level an uninterrupted
  /// run would have.
  void set_level(PressureLevel level);

  /// A real allocation failure (bad_alloc): pin Critical for
  /// alloc_failure_hold_ticks ticks so a degraded retry runs with maximum
  /// shedding instead of re-failing. Thread-safe.
  void record_allocation_failure();
  std::uint64_t allocation_failures() const noexcept;

  struct AccountSnapshot {
    std::string name;
    std::uint64_t bytes = 0;
  };
  struct Snapshot {
    std::uint64_t used_bytes = 0;
    std::uint64_t peak_bytes = 0;
    std::uint64_t budget_bytes = 0;
    PressureLevel level = PressureLevel::kSteady;
    std::uint64_t ticks = 0;
    std::uint64_t allocation_failures = 0;
    std::vector<AccountSnapshot> accounts;  ///< name-sorted
  };
  Snapshot snapshot();

  const Options& options() const noexcept { return options_; }

 private:
  friend class Accountant;  // lock-free used_/peak_ updates

  PressureLevel level_locked();
  void resolve_obs_locked();

  Options options_;
  mutable std::mutex mutex_;
  std::deque<Accountant::Slot> slots_;  // stable addresses, like obs families
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> alloc_failures_{0};
  PressurePlan plan_;
  std::uint64_t ticks_ = 0;
  std::uint64_t alloc_hold_until_ = 0;  ///< tick until which Critical is pinned
  PressureLevel last_level_ = PressureLevel::kSteady;

  std::uint64_t obs_epoch_ = UINT64_MAX;
  obs::Gauge obs_used_;
  obs::Gauge obs_budget_;
  obs::Gauge obs_level_;
  obs::Counter obs_level_changes_;
  obs::Counter obs_alloc_failures_;
};

struct Accountant::Slot {
  std::string name;
  std::atomic<std::uint64_t> bytes{0};
  MemoryBudget* owner = nullptr;
};

/// Process-global governor (borrowed; null = governance off). Installing a
/// different pointer bumps the epoch so long-lived components re-resolve
/// their accountants at single-threaded boundaries — the obs registry
/// contract. The governor must outlive every component that resolved
/// accountants from it.
MemoryBudget* global_governor() noexcept;
void set_global_governor(MemoryBudget* governor) noexcept;
std::uint64_t global_epoch() noexcept;

/// Accountant for `name` from the global governor; null-safe no-op handle
/// when none is installed.
Accountant account(const std::string& name);

/// RAII install/restore, for tests, benches, and drills.
class ScopedGlobalGovernor {
 public:
  explicit ScopedGlobalGovernor(MemoryBudget* governor)
      : previous_(global_governor()) {
    set_global_governor(governor);
  }
  ~ScopedGlobalGovernor() { set_global_governor(previous_); }
  ScopedGlobalGovernor(const ScopedGlobalGovernor&) = delete;
  ScopedGlobalGovernor& operator=(const ScopedGlobalGovernor&) = delete;

 private:
  MemoryBudget* previous_;
};

/// Bounded hand-off between producers emitting work units 0..N-1 and a
/// consumer that retires them in ascending order. acquire(s) blocks until
/// s < retired + window; release() retires one unit. window 0 = unbounded
/// (every acquire returns immediately). open() permanently unblocks all
/// waiters — the consumer's error path must call it (or release every
/// unit) before the producers' futures are waited, or they deadlock.
///
/// Deadlock-freedom for window >= 1, producers started in ascending-unit
/// order on a FIFO pool: at any time let f be the retired floor; unit f is
/// either finished (the consumer can retire it) or admitted (f < f+window),
/// and every worker blocked in acquire holds no lock the consumer needs —
/// so the floor always advances. Progress is induction on f.
class BackpressureGate {
 public:
  explicit BackpressureGate(std::size_t window);

  void acquire(std::size_t unit);
  void release();
  void open();

  std::size_t window() const noexcept { return window_; }
  /// Times acquire() actually blocked (not just checked) — the throttle
  /// signal the tests and obs counters read.
  std::uint64_t waits() const noexcept {
    return waits_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t window_;
  mutable std::mutex mutex_;
  std::condition_variable admitted_;
  std::size_t retired_ = 0;
  bool open_ = false;
  std::atomic<std::uint64_t> waits_{0};
};

}  // namespace tl::govern
