#include "govern/governor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace tl::govern {

const char* to_string(PressureLevel level) noexcept {
  switch (level) {
    case PressureLevel::kSteady: return "steady";
    case PressureLevel::kElevated: return "elevated";
    case PressureLevel::kCritical: return "critical";
  }
  return "?";
}

// --- Accountant --------------------------------------------------------------

void Accountant::add(std::uint64_t bytes) const noexcept {
  if (slot_ == nullptr || bytes == 0) return;
  slot_->bytes.fetch_add(bytes, std::memory_order_relaxed);
  MemoryBudget* owner = slot_->owner;
  const std::uint64_t used =
      owner->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // CAS-max for the high-water mark; contention is rare (capacity changes,
  // not per-record traffic), so the loop virtually never retries.
  std::uint64_t peak = owner->peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !owner->peak_.compare_exchange_weak(peak, used,
                                             std::memory_order_relaxed)) {
  }
}

void Accountant::sub(std::uint64_t bytes) const noexcept {
  if (slot_ == nullptr || bytes == 0) return;
  slot_->bytes.fetch_sub(bytes, std::memory_order_relaxed);
  slot_->owner->used_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t Accountant::bytes() const noexcept {
  return slot_ == nullptr ? 0 : slot_->bytes.load(std::memory_order_relaxed);
}

// --- PressurePlan ------------------------------------------------------------

PressurePlan PressurePlan::chaos(std::uint64_t seed,
                                 std::uint64_t horizon_ticks,
                                 std::uint64_t base_bytes,
                                 std::uint64_t floor_bytes, double clamp_rate) {
  PressurePlan plan;
  if (horizon_ticks == 0 || base_bytes == 0) return plan;
  const std::uint64_t floor = std::min(floor_bytes, base_bytes);
  util::Rng rng = util::Rng::derive(seed, 0x90be44ULL);
  for (std::uint64_t t = 1; t <= horizon_ticks; ++t) {
    if (!rng.chance(clamp_rate)) continue;
    // One draw in four restores the full budget, so schedules exercise
    // recovery (downgrade hysteresis) as well as clamping.
    const std::uint64_t budget =
        rng.below(4) == 0 ? base_bytes
                          : floor + rng.below(base_bytes - floor + 1);
    plan.add(t, budget);
  }
  return plan;
}

const BudgetClamp* PressurePlan::at(std::uint64_t tick) const noexcept {
  const auto it = std::upper_bound(
      clamps_.begin(), clamps_.end(), tick,
      [](std::uint64_t t, const BudgetClamp& c) { return t < c.tick; });
  if (it == clamps_.begin()) return nullptr;
  return &*(it - 1);
}

// --- MemoryBudget ------------------------------------------------------------

MemoryBudget::MemoryBudget(Options options) : options_(options) {
  if (options_.elevated_fraction <= 0.0 || options_.elevated_fraction >= 1.0 ||
      options_.critical_fraction <= options_.elevated_fraction ||
      options_.critical_fraction > 1.0) {
    throw std::invalid_argument{
        "MemoryBudget: need 0 < elevated_fraction < critical_fraction <= 1"};
  }
  if (options_.hysteresis_fraction < 0.0 ||
      options_.hysteresis_fraction >= options_.elevated_fraction) {
    throw std::invalid_argument{
        "MemoryBudget: hysteresis_fraction out of range"};
  }
}

Accountant MemoryBudget::accountant(const std::string& name) {
  std::lock_guard<std::mutex> lock{mutex_};
  for (Accountant::Slot& slot : slots_) {
    if (slot.name == name) return Accountant{&slot};
  }
  Accountant::Slot& slot = slots_.emplace_back();
  slot.name = name;
  slot.owner = this;
  return Accountant{&slot};
}

std::uint64_t MemoryBudget::used_bytes() const noexcept {
  return used_.load(std::memory_order_relaxed);
}

std::uint64_t MemoryBudget::peak_bytes() const noexcept {
  return peak_.load(std::memory_order_relaxed);
}

std::uint64_t MemoryBudget::budget_bytes() const {
  std::lock_guard<std::mutex> lock{mutex_};
  const BudgetClamp* clamp = plan_.at(ticks_);
  return clamp != nullptr ? clamp->budget_bytes : options_.budget_bytes;
}

PressureLevel MemoryBudget::level() {
  std::lock_guard<std::mutex> lock{mutex_};
  return level_locked();
}

PressureLevel MemoryBudget::level_locked() {
  resolve_obs_locked();
  const BudgetClamp* clamp = plan_.at(ticks_);
  const std::uint64_t budget =
      clamp != nullptr ? clamp->budget_bytes : options_.budget_bytes;
  const std::uint64_t used = used_.load(std::memory_order_relaxed);

  PressureLevel next = last_level_;
  if (budget == 0) {
    next = PressureLevel::kSteady;  // unlimited: accounting only
  } else {
    const double b = static_cast<double>(budget);
    const double elevated = options_.elevated_fraction * b;
    const double critical = options_.critical_fraction * b;
    const double hysteresis = options_.hysteresis_fraction * b;
    const double u = static_cast<double>(used);
    // Upgrade at the threshold; downgrade only once clear of it by the
    // hysteresis margin. One step per observation in either direction is
    // enough: decisions are made at the same boundaries ticks advance.
    switch (last_level_) {
      case PressureLevel::kSteady:
        if (u >= critical) next = PressureLevel::kCritical;
        else if (u >= elevated) next = PressureLevel::kElevated;
        break;
      case PressureLevel::kElevated:
        if (u >= critical) next = PressureLevel::kCritical;
        else if (u < elevated - hysteresis) next = PressureLevel::kSteady;
        break;
      case PressureLevel::kCritical:
        if (u < critical - hysteresis) {
          next = u >= elevated ? PressureLevel::kElevated
                               : PressureLevel::kSteady;
        }
        break;
    }
  }
  if (ticks_ < alloc_hold_until_ && next < PressureLevel::kCritical) {
    next = PressureLevel::kCritical;
  }
  if (next != last_level_) obs_level_changes_.inc();
  last_level_ = next;

  obs_used_.set(static_cast<double>(used_.load(std::memory_order_relaxed)));
  obs_budget_.set(static_cast<double>(budget));
  obs_level_.set(static_cast<double>(static_cast<std::uint8_t>(next)));
  return next;
}

void MemoryBudget::set_plan(PressurePlan plan) {
  for (std::size_t i = 1; i < plan.clamps().size(); ++i) {
    if (plan.clamps()[i].tick <= plan.clamps()[i - 1].tick) {
      throw std::invalid_argument{
          "MemoryBudget::set_plan: clamps must be tick-ascending"};
    }
  }
  std::lock_guard<std::mutex> lock{mutex_};
  plan_ = std::move(plan);
}

void MemoryBudget::tick() {
  std::lock_guard<std::mutex> lock{mutex_};
  ++ticks_;
}

void MemoryBudget::set_tick(std::uint64_t tick) {
  std::lock_guard<std::mutex> lock{mutex_};
  ticks_ = tick;
  alloc_hold_until_ = 0;
}

std::uint64_t MemoryBudget::ticks() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return ticks_;
}

void MemoryBudget::set_level(PressureLevel level) {
  std::lock_guard<std::mutex> lock{mutex_};
  last_level_ = level;
}

void MemoryBudget::record_allocation_failure() {
  alloc_failures_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock{mutex_};
  alloc_hold_until_ =
      std::max(alloc_hold_until_, ticks_ + options_.alloc_failure_hold_ticks);
  resolve_obs_locked();
  obs_alloc_failures_.inc();
}

std::uint64_t MemoryBudget::allocation_failures() const noexcept {
  return alloc_failures_.load(std::memory_order_relaxed);
}

MemoryBudget::Snapshot MemoryBudget::snapshot() {
  Snapshot snap;
  snap.level = level();  // refreshes gauges too
  std::lock_guard<std::mutex> lock{mutex_};
  snap.used_bytes = used_.load(std::memory_order_relaxed);
  snap.peak_bytes = peak_.load(std::memory_order_relaxed);
  const BudgetClamp* clamp = plan_.at(ticks_);
  snap.budget_bytes =
      clamp != nullptr ? clamp->budget_bytes : options_.budget_bytes;
  snap.ticks = ticks_;
  snap.allocation_failures = alloc_failures_.load(std::memory_order_relaxed);
  for (const Accountant::Slot& slot : slots_) {
    snap.accounts.push_back(
        {slot.name, slot.bytes.load(std::memory_order_relaxed)});
  }
  std::sort(snap.accounts.begin(), snap.accounts.end(),
            [](const AccountSnapshot& a, const AccountSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MemoryBudget::resolve_obs_locked() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_used_ = {};
    obs_budget_ = {};
    obs_level_ = {};
    obs_level_changes_ = {};
    obs_alloc_failures_ = {};
    return;
  }
  obs_used_ = reg->gauge("tl_govern_used_bytes", "accounted bytes in use");
  obs_budget_ =
      reg->gauge("tl_govern_budget_bytes", "effective memory budget (0=off)");
  obs_level_ = reg->gauge("tl_govern_pressure_level",
                          "0=steady 1=elevated 2=critical");
  obs_level_changes_ = reg->counter("tl_govern_level_changes_total",
                                    "hysteretic pressure-level transitions");
  obs_alloc_failures_ = reg->counter("tl_govern_allocation_failures_total",
                                     "bad_alloc events reported for escalation");
}

// --- global governor ---------------------------------------------------------

namespace {
std::atomic<MemoryBudget*> g_governor{nullptr};
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace

MemoryBudget* global_governor() noexcept {
  return g_governor.load(std::memory_order_acquire);
}

void set_global_governor(MemoryBudget* governor) noexcept {
  g_governor.store(governor, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t global_epoch() noexcept {
  return g_epoch.load(std::memory_order_acquire);
}

Accountant account(const std::string& name) {
  MemoryBudget* governor = global_governor();
  return governor != nullptr ? governor->accountant(name) : Accountant{};
}

// --- BackpressureGate --------------------------------------------------------

BackpressureGate::BackpressureGate(std::size_t window) : window_(window) {}

void BackpressureGate::acquire(std::size_t unit) {
  if (window_ == 0) return;
  std::unique_lock<std::mutex> lock{mutex_};
  if (open_ || unit < retired_ + window_) return;
  waits_.fetch_add(1, std::memory_order_relaxed);
  admitted_.wait(lock, [&] { return open_ || unit < retired_ + window_; });
}

void BackpressureGate::release() {
  if (window_ == 0) return;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    ++retired_;
  }
  admitted_.notify_all();
}

void BackpressureGate::open() {
  if (window_ == 0) return;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    open_ = true;
  }
  admitted_.notify_all();
}

}  // namespace tl::govern
