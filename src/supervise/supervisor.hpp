#pragma once

// StudySupervisor: graceful degradation for long sharded studies.
//
// The paper's telco pipeline runs for four weeks over ~40M UEs; at that
// scale the realistic failure is partial — a stuck worker, a transient EIO,
// one pathological UE — and the naive response (unwind, abort the study) is
// exactly wrong. The supervisor wraps the deterministic ShardedDayRunner
// with the reaction ladder an always-on system needs:
//
//   attempt --ok--------------------------------> staged, merge later
//      |
//      | failure (classified into tl::Status by classify_exception)
//      v
//   retryable? --yes, attempts left--> backoff (capped exponential, seeded
//      |                               jitter) --> retry
//      | no (permanent, or retries exhausted)
//      v
//   bisect: probe halves of the shard on the caller thread until the
//   failing item(s) are isolated --> quarantine them, re-run the shard
//   over the survivors (bounded by max_bisection_rounds)
//
// Determinism contract: retries, deadlines, backoff, and bisection all
// happen BEFORE any merge — shard results stage into per-shard buffers and
// merge in ascending shard order only after every shard has succeeded, so
// the record stream stays byte-identical to a serial run over the surviving
// population no matter which faults fired where. Quarantine decisions are
// driven only by per-item behavior (every attempt at a poison item fails),
// never by shard geometry, so the quarantined set is identical at any
// thread count.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "supervise/cancellation.hpp"
#include "supervise/status.hpp"
#include "supervise/task_fault_injector.hpp"

namespace tl::exec {
class ShardedDayRunner;
}

namespace tl::supervise {

/// One failed attempt of a shard, kept for the quarantine report.
struct ShardAttempt {
  int attempt = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
};

/// The structured outcome of one shard of one day — what used to be "an
/// exception somewhere in the pool".
struct ShardOutcome {
  std::size_t shard = 0;
  std::size_t first = 0;
  std::size_t last = 0;
  Status status;
  int attempts = 0;
  std::vector<ShardAttempt> trail;  ///< failed attempts, in order
};

/// One quarantined item (UE), with the evidence that condemned it.
struct QuarantinedItem {
  std::uint32_t item = 0;
  int day = 0;
  std::size_t shard = 0;
  Status status;                    ///< the probe failure that isolated it
  std::vector<ShardAttempt> trail;  ///< the owning shard's attempt trail
};

struct QuarantineReport {
  std::vector<QuarantinedItem> items;  ///< sorted by item id
};

/// Per-day supervision result.
struct DayReport {
  int day = 0;
  std::size_t shards = 0;
  std::uint64_t retries = 0;   ///< attempts beyond each shard's first
  std::uint64_t timeouts = 0;  ///< attempts cancelled by the watchdog
  std::uint64_t bisection_probes = 0;
  /// Shard re-runs granted after a kResourceExhausted failure escalated the
  /// global governor (at most one per shard per day).
  std::uint64_t degraded_retries = 0;
  std::vector<QuarantinedItem> quarantined;  ///< sorted by item id
  std::vector<ShardOutcome> outcomes;        ///< final outcome per shard

  bool degraded() const noexcept { return retries > 0 || !quarantined.empty(); }
};

/// Study-cumulative counters, surfaced in network_ops_report/incident_drill.
struct SupervisionSummary {
  std::uint64_t days = 0;
  std::uint64_t degraded_days = 0;  ///< days with retries or quarantine
  std::uint64_t shard_attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t permanent_failures = 0;
  std::uint64_t bisection_probes = 0;
  std::uint64_t degraded_retries = 0;  ///< governor-escalated shard re-runs
  QuarantineReport quarantine;  ///< cumulative, sorted by (item, day)
};

/// Supervision itself gave up: quarantine disabled, or a shard kept failing
/// across max_bisection_rounds re-runs without a reproducible culprit.
class SupervisionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SupervisorOptions {
  /// Worker threads (0 = hardware), shards per worker — same semantics as
  /// ShardedDayRunner::Options. Supervision keeps the finer default shard
  /// grain (4/worker): smaller shards are cheaper to retry and bisect,
  /// which matters more here than shaving fixed per-shard cost.
  unsigned threads = 0;
  unsigned shards_per_thread = 4;
  /// Floor on items per shard (ShardedDayRunner::Options semantics).
  std::size_t min_items_per_shard = 1;

  /// Re-attempts allowed per shard after its first try (per bisection round).
  int max_retries = 4;
  /// Capped exponential backoff between attempts of the same shard:
  /// min(cap, initial * multiplier^(retry-1)), scaled by a seeded jitter
  /// factor in [0.5, 1.5). Slept on the worker thread — never affects
  /// output bytes.
  std::uint64_t backoff_initial_ms = 5;
  std::uint64_t backoff_cap_ms = 200;
  double backoff_multiplier = 2.0;
  std::uint64_t jitter_seed = 0x5eedULL;

  /// Per-shard-attempt deadline enforced by the watchdog thread via
  /// cooperative cancellation (0 = no deadline). Also applied to bisection
  /// probes.
  std::uint64_t shard_deadline_ms = 0;

  /// When false, a shard that exhausts retries throws SupervisionError
  /// instead of bisecting (strict mode for tests / short runs).
  bool quarantine_enabled = true;
  /// How many times one shard may go through bisect-and-re-run in a single
  /// day before the supervisor declares the failure non-isolatable.
  int max_bisection_rounds = 3;

  /// Optional chaos seam: consulted at the top of every shard attempt
  /// (task channel). The per-item poison channel is the caller's to wire
  /// into its simulate/probe callbacks. Borrowed; may be null.
  const TaskFaultInjector* injector = nullptr;

  /// Invoked (on the supervising thread) for every item as it is
  /// quarantined — the telemetry hook for quarantine events.
  std::function<void(const QuarantinedItem&)> on_quarantine;
};

class Watchdog;  // deadline enforcement thread (internal to supervisor.cpp)

class StudySupervisor {
 public:
  explicit StudySupervisor(SupervisorOptions options);
  ~StudySupervisor();

  StudySupervisor(const StudySupervisor&) = delete;
  StudySupervisor& operator=(const StudySupervisor&) = delete;

  const SupervisorOptions& options() const noexcept { return options_; }
  unsigned thread_count() const noexcept;
  /// Shard geometry — identical to the wrapped ShardedDayRunner's.
  std::size_t shard_count(std::size_t item_count) const noexcept;

  /// The backoff the given retry will sleep (jitter included); exposed so
  /// tests can pin the policy down without measuring wall clock.
  std::uint64_t backoff_ms(int day, std::size_t shard, int attempt) const;

  /// Simulate items [first, last) of `shard` into per-shard staging, from a
  /// worker thread. MUST reset its shard's staging on entry (retries re-run
  /// it), skip items in `skip` (sorted), poll `cancel` (also threaded into
  /// the EmitFrame hot loop), and touch nothing shared.
  using SimulateFn = std::function<void(
      std::size_t shard, std::size_t first, std::size_t last,
      const CancelToken* cancel, std::span<const std::uint32_t> skip)>;

  /// Bisection probe: simulate items [first, last) into throwaway staging,
  /// on the calling thread. Same skip/cancel contract as SimulateFn. Kept
  /// separate so probes replay only per-item behavior — the injector's task
  /// channel is deliberately not consulted, which is what makes quarantine
  /// decisions independent of shard geometry.
  using ProbeFn =
      std::function<void(std::size_t first, std::size_t last,
                         const CancelToken* cancel, std::span<const std::uint32_t> skip)>;

  /// Fold shard staging into global state; calling thread, ascending shard
  /// order, only after EVERY shard has succeeded.
  using MergeFn = std::function<void(std::size_t shard)>;

  /// Supervises one day over `item_count` items, of which `quarantined`
  /// (sorted ids) are skipped from the start. Returns the day's report;
  /// newly quarantined items are in DayReport::quarantined (the caller owns
  /// folding them into its persistent set). Throws SupervisionError when
  /// degradation is impossible (see SupervisorOptions), and propagates
  /// io::SimulatedCrash untouched.
  DayReport run_day(int day, std::size_t item_count,
                    std::span<const std::uint32_t> quarantined,
                    const SimulateFn& simulate, const ProbeFn& probe,
                    const MergeFn& merge);

  const SupervisionSummary& summary() const noexcept { return summary_; }
  void reset_summary() { summary_ = SupervisionSummary{}; }

 private:
  struct ShardState;

  /// Probes halves of [state.first, state.last) until the deterministically
  /// failing items are isolated; quarantines them into `report` and `skip`.
  /// Returns how many items were condemned (0 = failure did not reproduce).
  std::size_t isolate(int day, std::size_t shard, const ShardState& state,
                      std::vector<std::uint32_t>& skip, DayReport& report,
                      const ProbeFn& probe);

  /// Re-resolves the obs handles when the global registry changed since the
  /// last run_day. Called at the top of run_day (single-threaded boundary).
  void resolve_obs();

  SupervisorOptions options_;
  std::unique_ptr<exec::ShardedDayRunner> runner_;
  std::unique_ptr<Watchdog> watchdog_;
  SupervisionSummary summary_;

  // Supervisors outlive registry swaps (a bench reuses one across arms), so
  // handles are epoch-checked rather than construction-captured.
  std::uint64_t obs_epoch_ = UINT64_MAX;
  obs::Counter obs_attempts_;
  obs::Counter obs_retries_;
  obs::Counter obs_timeouts_;
  obs::Counter obs_probes_;
  obs::Counter obs_quarantined_;
  obs::Gauge obs_quarantine_size_;
  obs::Histogram obs_day_seconds_;
};

}  // namespace tl::supervise
