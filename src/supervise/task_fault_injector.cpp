#include "supervise/task_fault_injector.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "io/file.hpp"
#include "supervise/status.hpp"
#include "util/rng.hpp"

namespace tl::supervise {
namespace {

// Channel salts keep the task and poison streams statistically independent
// of each other and of every simulation stream.
constexpr std::uint64_t kTaskSalt = 0x7a5cf417u;
constexpr std::uint64_t kPoisonSalt = 0x0901507eu;
constexpr std::uint64_t kPoisonHangSalt = 0x0901507fu;

}  // namespace

TaskFaultInjector::TaskFaultInjector(TaskFaultConfig config)
    : config_(std::move(config)) {
  std::sort(config_.poison_ues.begin(), config_.poison_ues.end());
  config_.poison_ues.erase(
      std::unique(config_.poison_ues.begin(), config_.poison_ues.end()),
      config_.poison_ues.end());
}

TaskFault TaskFaultInjector::decide_task(int day, std::size_t shard, int attempt) const {
  if (attempt > config_.max_faulty_attempts) return TaskFault::kNone;
  util::Rng rng = util::Rng::derive(util::derive_seed(config_.seed, kTaskSalt),
                                    static_cast<std::uint64_t>(day),
                                    static_cast<std::uint64_t>(shard),
                                    static_cast<std::uint64_t>(attempt));
  double u = rng.uniform();
  if ((u -= config_.throw_rate) < 0) return TaskFault::kThrow;
  if ((u -= config_.io_error_rate) < 0) return TaskFault::kIoError;
  if ((u -= config_.hang_rate) < 0) return TaskFault::kHang;
  if ((u -= config_.slow_rate) < 0) return TaskFault::kSlow;
  return TaskFault::kNone;
}

void TaskFaultInjector::hang(const CancelToken* token) const {
  // Cooperative hang: spin in 1 ms naps until someone cancels us. The cap
  // is a harness safety net — with no supervisor (token == nullptr, or
  // deadlines disabled) the "hang" degrades to a long stall instead of a
  // deadlock.
  using clock = std::chrono::steady_clock;
  const auto give_up = clock::now() + std::chrono::milliseconds(config_.hang_cap_ms);
  while (clock::now() < give_up) {
    if (token != nullptr) token->throw_if_cancelled();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void TaskFaultInjector::on_task_begin(int day, std::size_t shard, int attempt,
                                      const CancelToken* token) const {
  switch (decide_task(day, shard, attempt)) {
    case TaskFault::kNone:
      return;
    case TaskFault::kThrow:
      throw std::runtime_error{"injected task failure (day " + std::to_string(day) +
                               ", shard " + std::to_string(shard) + ", attempt " +
                               std::to_string(attempt) + ")"};
    case TaskFault::kIoError:
      throw io::IoError{"injected transient EIO (day " + std::to_string(day) +
                        ", shard " + std::to_string(shard) + ")"};
    case TaskFault::kHang:
      // If the watchdog cancels us, hang() throws CancelledError; if nobody
      // does, the cap expires and the task proceeds normally (merely late).
      hang(token);
      return;
    case TaskFault::kSlow:
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.slow_ms));
      return;
  }
}

bool TaskFaultInjector::is_poison(std::uint32_t ue) const {
  if (std::binary_search(config_.poison_ues.begin(), config_.poison_ues.end(), ue)) {
    return true;
  }
  if (config_.poison_ue_fraction <= 0.0) return false;
  return util::Rng::derive(util::derive_seed(config_.seed, kPoisonSalt), ue)
      .chance(config_.poison_ue_fraction);
}

void TaskFaultInjector::on_ue(std::uint32_t ue, const CancelToken* token) const {
  if (!is_poison(ue)) return;
  const bool hangs =
      config_.poison_hang_fraction > 0.0 &&
      util::Rng::derive(util::derive_seed(config_.seed, kPoisonHangSalt), ue)
          .chance(config_.poison_hang_fraction);
  if (hangs) {
    // A hanging poison UE is first interrupted by the deadline (CancelledError
    // out of hang()); with deadlines off, the cap expires and it falls through
    // to the deterministic throw below — either way every attempt fails.
    hang(token);
  }
  throw PermanentError{"injected poison UE " + std::to_string(ue)};
}

std::vector<std::uint32_t> TaskFaultInjector::poison_set(std::uint32_t universe) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t ue = 0; ue < universe; ++ue) {
    if (is_poison(ue)) out.push_back(ue);
  }
  return out;
}

}  // namespace tl::supervise
