#pragma once

// In-process task-level chaos: the seam that makes StudySupervisor itself
// testable. Two independent fault channels with very different determinism
// contracts:
//
//  * TASK faults (throws / transient I/O errors / hangs / slowdowns) are
//    keyed by (day, shard, attempt). They model scheduler accidents and
//    flaky infrastructure: retrying the same shard eventually succeeds
//    because max_faulty_attempts caps how many attempts in a row can fault.
//    Shard keys depend on the thread count, so these faults are allowed to
//    differ between runs — the retry loop absorbs them before they can
//    affect output bytes.
//
//  * POISON-UE faults are keyed by UE id only — day- and thread-independent.
//    They model genuinely pathological input: every attempt that simulates a
//    poison UE fails the same way, so bisection will isolate and quarantine
//    exactly the same UE set at any thread count, which is what the
//    byte-determinism property test leans on.

#include <cstdint>
#include <vector>

#include "supervise/cancellation.hpp"

namespace tl::supervise {

struct TaskFaultConfig {
  std::uint64_t seed = 0;

  // --- task channel (keyed by day/shard/attempt) ---
  double throw_rate = 0.0;     ///< PermanentError-looking std::runtime_error
  double io_error_rate = 0.0;  ///< io::IoError (retryable)
  double hang_rate = 0.0;      ///< cooperative hang until cancelled
  double slow_rate = 0.0;      ///< sleep slow_ms, then proceed normally
  std::uint64_t slow_ms = 5;
  /// A (day, shard) pair faults on at most this many consecutive attempts;
  /// keep <= the supervisor's max_retries so task faults always converge.
  int max_faulty_attempts = 3;
  /// Safety net: an injected hang gives up after this long even if nobody
  /// cancels it, so an unsupervised run cannot deadlock.
  std::uint64_t hang_cap_ms = 2'000;

  // --- poison channel (keyed by UE id only) ---
  double poison_ue_fraction = 0.0;  ///< fraction of UEs that always throw
  double poison_hang_fraction = 0.0;  ///< of the poison UEs, fraction that hang instead
  std::vector<std::uint32_t> poison_ues;  ///< explicit poison ids (additive)
};

enum class TaskFault : std::uint8_t { kNone, kThrow, kIoError, kHang, kSlow };

/// Thread-safe after construction: all decisions are pure functions of the
/// seed and the keys, no mutable state.
class TaskFaultInjector {
 public:
  explicit TaskFaultInjector(TaskFaultConfig config);

  const TaskFaultConfig& config() const noexcept { return config_; }

  /// Pure decision function, exposed so tests can assert determinism.
  TaskFault decide_task(int day, std::size_t shard, int attempt) const;

  /// Invoked at the top of a shard attempt (from ShardedDayRunner's
  /// task_hook). Throws / hangs / sleeps per decide_task. `token` may be
  /// null (unsupervised run): hangs then rely on hang_cap_ms.
  void on_task_begin(int day, std::size_t shard, int attempt,
                     const CancelToken* token) const;

  /// True iff this UE is poisoned (either sampled or explicit).
  bool is_poison(std::uint32_t ue) const;

  /// Invoked per UE inside the simulate loop. Poison UEs throw
  /// PermanentError (or cooperatively hang, for the hang subset).
  void on_ue(std::uint32_t ue, const CancelToken* token) const;

  /// All poison ids below `universe`, ascending — the oracle a determinism
  /// test compares the quarantine report against.
  std::vector<std::uint32_t> poison_set(std::uint32_t universe) const;

 private:
  void hang(const CancelToken* token) const;

  TaskFaultConfig config_;
};

}  // namespace tl::supervise
