#pragma once

// Cooperative cancellation for shard tasks.
//
// The watchdog cannot kill a thread; it can only ask the work to stop. A
// CancelToken is that ask: a single atomic the hot loop polls once per trace
// event (one relaxed load — cheap enough for the EmitFrame path), carrying
// the StatusCode that explains WHY the task should stop. Header-only so
// tl_core can poll tokens without linking tl_supervise.

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "supervise/status.hpp"

namespace tl::supervise {

/// Thrown by CancelToken::throw_if_cancelled(); carries the cancellation
/// reason so classify_exception() can preserve it (deadline vs. explicit).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(StatusCode code)
      : std::runtime_error(code == StatusCode::kDeadlineExceeded
                               ? "shard deadline exceeded"
                               : "shard cancelled"),
        code_(code) {}

  StatusCode code() const noexcept { return code_; }

 private:
  StatusCode code_;
};

/// One token per in-flight shard attempt. First cancel() wins; later calls
/// with a different reason are ignored so the recorded cause is the one that
/// actually interrupted the work.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel(StatusCode reason = StatusCode::kCancelled) noexcept {
    std::uint8_t expected = kLive;
    code_.compare_exchange_strong(expected, static_cast<std::uint8_t>(reason),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  }

  bool cancelled() const noexcept {
    return code_.load(std::memory_order_acquire) != kLive;
  }

  /// Only meaningful once cancelled() is true.
  StatusCode reason() const noexcept {
    const std::uint8_t raw = code_.load(std::memory_order_acquire);
    return raw == kLive ? StatusCode::kOk : static_cast<StatusCode>(raw);
  }

  void throw_if_cancelled() const {
    const std::uint8_t raw = code_.load(std::memory_order_relaxed);
    if (raw != kLive) throw CancelledError{static_cast<StatusCode>(raw)};
  }

  /// Re-arm for the next attempt. Callers must guarantee no concurrent use.
  void reset() noexcept { code_.store(kLive, std::memory_order_release); }

 private:
  // kLive is distinct from every StatusCode value we would cancel with
  // (cancel(kOk) would read back as "cancelled with kOk" — don't do that).
  static constexpr std::uint8_t kLive = 0xFF;
  std::atomic<std::uint8_t> code_{kLive};
};

}  // namespace tl::supervise
