#pragma once

// Typed error taxonomy for supervised execution.
//
// A four-week countrywide run does not fail with one clean exception type:
// it sees transient I/O errors, hung workers, poisoned inputs, and genuine
// logic bugs, and each demands a different reaction (retry, cancel, bisect,
// abort). tl::Status is the single currency those decisions trade in at the
// exec / telemetry / io boundaries — ad-hoc exceptions are converted exactly
// once, at the shard-task boundary, by classify_exception(), and everything
// above (retry policy, quarantine, reports) works with typed codes instead
// of string-matching on what().

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tl {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// Cooperative cancellation was requested and honored.
  kCancelled,
  /// The watchdog fired a shard deadline. Retryable: a hang can be a
  /// scheduling accident, not a property of the work.
  kDeadlineExceeded,
  /// Transient storage failure (EIO, failed fsync, short write). Retryable:
  /// the durable protocol already treats these as "commit did not happen".
  kUnavailable,
  /// Allocation failure (bad_alloc, length_error). Not blindly retryable —
  /// retrying under the same memory pressure just thrashes — but retryable
  /// *with degradation*: after the governor sheds detail
  /// (record_allocation_failure pins Critical), one more attempt is sound.
  kResourceExhausted,
  /// A precondition was violated (std::invalid_argument and friends). Not
  /// retryable: the same call will fail the same way.
  kInvalidArgument,
  /// A logic error, or a deterministic failure pinned to specific input.
  /// Not retryable; this is what bisection condemns poison UEs with.
  kInternal,
  /// An exception we could not classify. Retryable a bounded number of
  /// times — unknown failures are assumed transient until proven otherwise.
  kUnknown,
  /// Supervision itself gave up (retries and bisection exhausted).
  kAborted,
  /// Committed data is unrecoverable: every replica of a WAL range is
  /// damaged and read-repair certified the loss (exact day/record
  /// accounting travels in the message / RepairEvent). Not retryable — the
  /// bytes are gone; the caller decides whether a quarantined-range study
  /// is still a study.
  kDataLoss,
};

std::string_view to_string(StatusCode code) noexcept;

/// Retry policy hook: transient codes may be re-attempted (with backoff),
/// permanent ones go straight to bisection/quarantine.
bool is_retryable(StatusCode code) noexcept;

/// Codes that must NOT be retried as-is, but earn one more attempt after
/// the resource governor has been told to degrade (currently only
/// kResourceExhausted). The retry helpers consult this when a global
/// govern::MemoryBudget is installed; without one the code stays permanent.
bool is_retryable_with_degradation(StatusCode code) noexcept;

/// A code plus human-readable context. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }
  bool retryable() const noexcept { return is_retryable(code_); }

  /// "DEADLINE_EXCEEDED: shard 3 exceeded 500 ms" style rendering.
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

namespace supervise {

/// Throw this to signal "transient, please retry" explicitly (maps to
/// kUnavailable). The I/O layer's io::IoError classifies the same way.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what) : std::runtime_error(what) {}
};

/// Throw this to signal "deterministic, do not retry" explicitly (maps to
/// kInternal). The poison-UE injector uses it; real code can too.
class PermanentError : public std::runtime_error {
 public:
  explicit PermanentError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when storage integrity certifies that committed data is gone:
/// both the primary and the mirror copy of a sealed WAL range are damaged.
/// Maps to kDataLoss (permanent). Defined inline so the telemetry/serve
/// layers can throw it with only this header (tl_supervise links tl_exec
/// links tl_telemetry — a link edge back up would be a cycle).
class DataLossError : public std::runtime_error {
 public:
  explicit DataLossError(const std::string& what) : std::runtime_error(what) {}
};

/// Maps an in-flight exception to a Status:
///
///   CancelledError            -> its embedded code (kCancelled / kDeadlineExceeded)
///   DataLossError             -> kDataLoss             (permanent, certified)
///   io::IoError               -> kUnavailable          (retryable)
///   TransientError            -> kUnavailable          (retryable)
///   PermanentError            -> kInternal             (permanent)
///   std::bad_alloc            -> kResourceExhausted    (degraded-retryable)
///   std::length_error         -> kResourceExhausted    (degraded-retryable;
///                                 a container hitting max_size is an
///                                 allocation failure in logic_error's coat)
///   std::invalid_argument     -> kInvalidArgument      (permanent)
///   std::logic_error          -> kInternal             (permanent)
///   anything else             -> kUnknown              (retryable, bounded)
///
/// io::SimulatedCrash is deliberately NOT mapped: a simulated process death
/// must never be absorbed into a retry loop, so classify rethrows it.
Status classify_exception(std::exception_ptr error);

}  // namespace supervise
}  // namespace tl
