#include "supervise/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "govern/governor.hpp"
#include "util/rng.hpp"

namespace tl::supervise {
namespace {

/// Arms `token` with kDeadlineExceeded after `deadline_ms` unless disarmed
/// first. One watchdog per attempt; joined before the next attempt starts,
/// so the token it cancels is always the attempt it was armed for.
class AttemptWatchdog {
 public:
  AttemptWatchdog(CancelToken& token, std::uint64_t deadline_ms)
      : thread_([this, &token, deadline_ms] {
          std::unique_lock<std::mutex> lock(mutex_);
          if (!cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                            [this] { return disarmed_; })) {
            token.cancel(StatusCode::kDeadlineExceeded);
          }
        }) {}

  ~AttemptWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

}  // namespace

std::uint64_t retry_backoff_ms(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1) return 0;
  const double base =
      static_cast<double>(policy.backoff_initial_ms) *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt - 2));
  const double capped =
      std::min(base, static_cast<double>(policy.backoff_cap_ms));
  const double jitter =
      util::Rng::derive(policy.jitter_seed, static_cast<std::uint64_t>(attempt))
          .uniform(0.5, 1.5);
  return static_cast<std::uint64_t>(capped * jitter);
}

RetryReport run_with_retries(const RetryPolicy& policy, const std::string& what,
                             const std::function<void(const CancelToken&)>& fn) {
  RetryReport report;
  int max_attempts = 1 + std::max(0, policy.max_retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const std::uint64_t backoff = retry_backoff_ms(policy, attempt);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    ++report.attempts;
    if (attempt > 1) ++report.retries;
    CancelToken token;
    Status status;
    try {
      if (policy.attempt_deadline_ms > 0) {
        AttemptWatchdog watchdog(token, policy.attempt_deadline_ms);
        fn(token);
      } else {
        fn(token);
      }
      report.status = Status::ok();
      return report;
    } catch (...) {
      // SimulatedCrash rethrows from inside classify_exception.
      status = classify_exception(std::current_exception());
    }
    if (status.code() == StatusCode::kDeadlineExceeded) ++report.timeouts;
    report.status = Status{
        status.code(), what + " (attempt " + std::to_string(attempt) + "/" +
                           std::to_string(max_attempts) + "): " +
                           status.message()};
    if (!status.retryable()) {
      // kResourceExhausted earns exactly one extra attempt *after* the
      // governor has been told to shed (record_allocation_failure pins the
      // pressure level at Critical for a hold period). Without a governor
      // there is nothing to shed, so the failure stays permanent.
      govern::MemoryBudget* governor = govern::global_governor();
      if (report.degraded_retries == 0 && governor != nullptr &&
          is_retryable_with_degradation(status.code())) {
        governor->record_allocation_failure();
        ++report.degraded_retries;
        ++max_attempts;
        continue;
      }
      return report;
    }
  }
  // Retries exhausted on a retryable failure: surface as kAborted, the
  // taxonomy's "supervision itself gave up" code, keeping the last cause.
  report.status =
      Status{StatusCode::kAborted, what + ": retries exhausted; last: " +
                                       report.status.to_string()};
  return report;
}

}  // namespace tl::supervise
