#include "supervise/status.hpp"

#include <new>

#include "io/file.hpp"
#include "supervise/cancellation.hpp"

namespace tl {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnknown: return "UNKNOWN";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "BAD_STATUS_CODE";
}

bool is_retryable(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kUnknown:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

bool is_retryable_with_degradation(StatusCode code) noexcept {
  return code == StatusCode::kResourceExhausted;
}

std::string Status::to_string() const {
  std::string out{tl::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace supervise {

Status classify_exception(std::exception_ptr error) {
  if (!error) return Status::ok();
  try {
    std::rethrow_exception(error);
  } catch (const io::SimulatedCrash&) {
    // A simulated process death is a harness event, not a task failure; it
    // must unwind all the way out exactly like a real SIGKILL would.
    throw;
  } catch (const CancelledError& e) {
    return Status{e.code(), e.what()};
  } catch (const DataLossError& e) {
    // Certified loss of committed data outranks the generic I/O lane: a
    // retry cannot regrow bytes whose every replica is damaged.
    return Status{StatusCode::kDataLoss, e.what()};
  } catch (const io::IoError& e) {
    return Status{StatusCode::kUnavailable, e.what()};
  } catch (const TransientError& e) {
    return Status{StatusCode::kUnavailable, e.what()};
  } catch (const PermanentError& e) {
    return Status{StatusCode::kInternal, e.what()};
  } catch (const std::bad_alloc& e) {
    return Status{StatusCode::kResourceExhausted, e.what()};
  } catch (const std::length_error& e) {
    // length_error IS-A logic_error, but a container exceeding max_size is
    // an allocation failure, not a code bug: classify before logic_error so
    // it lands in the degraded-retry lane instead of the permanent one.
    return Status{StatusCode::kResourceExhausted, e.what()};
  } catch (const std::invalid_argument& e) {
    return Status{StatusCode::kInvalidArgument, e.what()};
  } catch (const std::logic_error& e) {
    return Status{StatusCode::kInternal, e.what()};
  } catch (const std::exception& e) {
    return Status{StatusCode::kUnknown, e.what()};
  } catch (...) {
    return Status{StatusCode::kUnknown, "non-std exception"};
  }
}

}  // namespace supervise
}  // namespace tl
