#include "supervise/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/sharded_runner.hpp"
#include "govern/governor.hpp"
#include "obs/scoped_timer.hpp"
#include "util/rng.hpp"

namespace tl::supervise {

using clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Watchdog: one lazily-started thread tracking (token, deadline) pairs and
// firing cancel(kDeadlineExceeded) on the ones that expire. Arm/disarm are
// O(entries) under a mutex — entries number at most a few dozen in-flight
// shard attempts, never the population.
class Watchdog {
 public:
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock{mutex_};
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void arm(CancelToken* token, std::uint64_t timeout_ms) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (!thread_.joinable()) thread_ = std::thread{[this] { loop(); }};
    entries_.push_back({token, clock::now() + std::chrono::milliseconds(timeout_ms)});
    cv_.notify_all();
  }

  /// After disarm returns, the watchdog will never touch `token` again (a
  /// fire in progress holds the mutex, so disarm orders after it).
  void disarm(CancelToken* token) {
    std::lock_guard<std::mutex> lock{mutex_};
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) { return e.token == token; }),
                   entries_.end());
  }

 private:
  struct Entry {
    CancelToken* token;
    clock::time_point deadline;
  };

  void loop() {
    std::unique_lock<std::mutex> lock{mutex_};
    while (!stop_) {
      if (entries_.empty()) {
        cv_.wait(lock, [this] { return stop_ || !entries_.empty(); });
        continue;
      }
      clock::time_point next = entries_.front().deadline;
      for (const Entry& e : entries_) next = std::min(next, e.deadline);
      cv_.wait_until(lock, next);
      const clock::time_point now = clock::now();
      entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                    [&](const Entry& e) {
                                      if (e.deadline > now) return false;
                                      e.token->cancel(StatusCode::kDeadlineExceeded);
                                      return true;
                                    }),
                     entries_.end());
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::thread thread_;
  bool stop_ = false;
};

namespace {

/// RAII: a deadline armed on entry is disarmed on every exit path.
class DeadlineGuard {
 public:
  DeadlineGuard(Watchdog* watchdog, CancelToken* token,
                std::uint64_t timeout_ms)
      : watchdog_(timeout_ms > 0 ? watchdog : nullptr), token_(token) {
    if (watchdog_ != nullptr) watchdog_->arm(token_, timeout_ms);
  }
  ~DeadlineGuard() {
    if (watchdog_ != nullptr) watchdog_->disarm(token_);
  }
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;

 private:
  Watchdog* watchdog_;
  CancelToken* token_;
};

std::size_t live_items(const std::vector<std::uint32_t>& skip, std::size_t first,
                       std::size_t last) {
  const auto lo = std::lower_bound(skip.begin(), skip.end(),
                                   static_cast<std::uint32_t>(first));
  const auto hi = std::lower_bound(skip.begin(), skip.end(),
                                   static_cast<std::uint32_t>(last));
  return (last - first) - static_cast<std::size_t>(hi - lo);
}

void insert_sorted(std::vector<std::uint32_t>& skip, std::uint32_t item) {
  skip.insert(std::lower_bound(skip.begin(), skip.end(), item), item);
}

}  // namespace

struct StudySupervisor::ShardState {
  std::size_t first = 0;
  std::size_t last = 0;
  int attempt = 0;        ///< attempts in the current bisection round
  int total_attempts = 0;
  int bisection_rounds = 0;
  bool degraded_retry_granted = false;  ///< the one post-escalation re-run
  std::vector<ShardAttempt> trail;
  Status round_status;
  std::unique_ptr<CancelToken> token = std::make_unique<CancelToken>();
};

StudySupervisor::StudySupervisor(SupervisorOptions options)
    : options_(std::move(options)), watchdog_(std::make_unique<Watchdog>()) {
  exec::ShardedDayRunner::Options ro;
  ro.threads = options_.threads;
  ro.shards_per_thread = options_.shards_per_thread;
  ro.min_items_per_shard = options_.min_items_per_shard;
  runner_ = std::make_unique<exec::ShardedDayRunner>(ro);
}

StudySupervisor::~StudySupervisor() = default;

unsigned StudySupervisor::thread_count() const noexcept {
  return runner_->thread_count();
}

std::size_t StudySupervisor::shard_count(std::size_t item_count) const noexcept {
  return runner_->shard_count(item_count);
}

void StudySupervisor::resolve_obs() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_attempts_ = obs::Counter{};
    obs_retries_ = obs::Counter{};
    obs_timeouts_ = obs::Counter{};
    obs_probes_ = obs::Counter{};
    obs_quarantined_ = obs::Counter{};
    obs_quarantine_size_ = obs::Gauge{};
    obs_day_seconds_ = obs::Histogram{};
    return;
  }
  obs_attempts_ = reg->counter("tl_supervise_shard_attempts_total",
                               "Shard attempts, including first tries");
  obs_retries_ = reg->counter("tl_supervise_retries_total",
                              "Shard attempts beyond each shard's first");
  obs_timeouts_ = reg->counter("tl_supervise_timeouts_total",
                               "Shard attempts cancelled by the watchdog");
  obs_probes_ = reg->counter("tl_supervise_bisection_probes_total",
                             "Bisection probes run to isolate poison items");
  obs_quarantined_ = reg->counter("tl_supervise_quarantined_total",
                                  "Items condemned to quarantine");
  obs_quarantine_size_ = reg->gauge("tl_supervise_quarantine_size",
                                    "Items in the cumulative quarantine set");
  obs_day_seconds_ =
      reg->histogram("tl_supervise_day_seconds",
                     obs::MetricsRegistry::latency_edges_s(),
                     "Wall time per supervised day");
}

std::uint64_t StudySupervisor::backoff_ms(int day, std::size_t shard,
                                          int attempt) const {
  if (attempt <= 1) return 0;
  const double base =
      static_cast<double>(options_.backoff_initial_ms) *
      std::pow(options_.backoff_multiplier, static_cast<double>(attempt - 2));
  const double capped = std::min(base, static_cast<double>(options_.backoff_cap_ms));
  const double jitter =
      util::Rng::derive(options_.jitter_seed, static_cast<std::uint64_t>(day),
                        static_cast<std::uint64_t>(shard),
                        static_cast<std::uint64_t>(attempt))
          .uniform(0.5, 1.5);
  return static_cast<std::uint64_t>(capped * jitter);
}

std::size_t StudySupervisor::isolate(int day, std::size_t shard,
                                     const ShardState& state,
                                     std::vector<std::uint32_t>& skip,
                                     DayReport& report, const ProbeFn& probe) {
  std::size_t found = 0;
  const auto probe_range = [&](std::size_t first, std::size_t last) -> Status {
    ++report.bisection_probes;
    ++summary_.bisection_probes;
    CancelToken token;
    DeadlineGuard deadline{watchdog_.get(), &token, options_.shard_deadline_ms};
    try {
      probe(first, last, &token, skip);
      return Status::ok();
    } catch (...) {
      return classify_exception(std::current_exception());
    }
  };
  // Depth-first halving. Both halves of a failing range are probed — a shard
  // can hide several poison items. A range that fails while both its halves
  // pass contributes nothing (interaction/flaky), and the caller re-runs the
  // shard instead.
  const std::function<void(std::size_t, std::size_t)> descend =
      [&](std::size_t first, std::size_t last) {
        if (live_items(skip, first, last) == 0) return;
        const Status status = probe_range(first, last);
        if (status.is_ok()) return;
        if (live_items(skip, first, last) == 1) {
          std::uint32_t item = 0;
          for (std::size_t i = first; i < last; ++i) {
            if (!std::binary_search(skip.begin(), skip.end(),
                                    static_cast<std::uint32_t>(i))) {
              item = static_cast<std::uint32_t>(i);
              break;
            }
          }
          insert_sorted(skip, item);
          QuarantinedItem q;
          q.item = item;
          q.day = day;
          q.shard = shard;
          q.status = status;
          q.trail = state.trail;
          report.quarantined.push_back(std::move(q));
          if (options_.on_quarantine) options_.on_quarantine(report.quarantined.back());
          ++found;
          return;
        }
        const std::size_t mid = first + (last - first) / 2;
        descend(first, mid);
        descend(mid, last);
      };
  descend(state.first, state.last);
  return found;
}

DayReport StudySupervisor::run_day(int day, std::size_t item_count,
                                   std::span<const std::uint32_t> quarantined,
                                   const SimulateFn& simulate, const ProbeFn& probe,
                                   const MergeFn& merge) {
  resolve_obs();
  obs::ScopedTimer day_span{obs_day_seconds_};
  const std::uint64_t attempts_before = summary_.shard_attempts;
  DayReport report;
  report.day = day;
  if (item_count == 0) {
    ++summary_.days;
    day_span.cancel();
    return report;
  }

  const std::size_t shards = runner_->shard_count(item_count);
  report.shards = shards;
  std::vector<ShardState> states(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    states[shard].first = shard * item_count / shards;
    states[shard].last = (shard + 1) * item_count / shards;
  }

  std::vector<std::uint32_t> skip(quarantined.begin(), quarantined.end());
  std::sort(skip.begin(), skip.end());
  skip.erase(std::unique(skip.begin(), skip.end()), skip.end());

  std::vector<std::size_t> pending(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) pending[shard] = shard;

  exec::ThreadPool& pool = runner_->pool();
  while (!pending.empty()) {
    // One round: launch every pending shard, then barrier on the round.
    // Failed shards are re-queued for the next round; no merge happens until
    // the pending set drains, so retry scheduling can never reorder output.
    std::vector<std::pair<std::size_t, std::future<void>>> inflight;
    inflight.reserve(pending.size());
    for (const std::size_t shard : pending) {
      ShardState& st = states[shard];
      const int attempt = ++st.attempt;
      ++st.total_attempts;
      ++summary_.shard_attempts;
      if (st.total_attempts > 1) {
        ++report.retries;
        ++summary_.retries;
      }
      inflight.emplace_back(
          shard, pool.submit([this, &st, &simulate, &skip, day, shard, attempt] {
            const std::uint64_t backoff = backoff_ms(day, shard, attempt);
            if (backoff > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
            }
            st.token->reset();
            DeadlineGuard deadline{watchdog_.get(), st.token.get(),
                                   options_.shard_deadline_ms};
            try {
              if (options_.injector != nullptr) {
                options_.injector->on_task_begin(day, shard, attempt, st.token.get());
              }
              simulate(shard, st.first, st.last, st.token.get(), skip);
              st.round_status = Status::ok();
            } catch (...) {
              // classify_exception rethrows io::SimulatedCrash, which then
              // parks in the future and unwinds out of run_day below —
              // supervision never absorbs a process death.
              st.round_status = classify_exception(std::current_exception());
            }
          }));
    }
    pending.clear();

    // Round barrier. get() rethrows anything classify refused to absorb.
    std::exception_ptr fatal;
    for (auto& [shard, future] : inflight) {
      try {
        future.get();
      } catch (...) {
        if (fatal == nullptr) fatal = std::current_exception();
      }
    }
    if (fatal != nullptr) std::rethrow_exception(fatal);

    // React in ascending shard order so escalation (and therefore the
    // quarantine report) is deterministic.
    for (auto& [shard, future] : inflight) {
      ShardState& st = states[shard];
      const Status status = st.round_status;
      if (status.is_ok()) continue;

      st.trail.push_back({st.total_attempts, status.code(), status.message()});
      if (status.code() == StatusCode::kDeadlineExceeded) {
        ++report.timeouts;
        ++summary_.timeouts;
      }
      if (status.retryable()) {
        ++summary_.transient_failures;
      } else {
        ++summary_.permanent_failures;
      }

      if (status.retryable() && st.attempt <= options_.max_retries) {
        pending.push_back(shard);
        continue;
      }

      // An allocation failure is not blindly retryable, but when a global
      // governor is installed it earns exactly one re-run after the
      // governor escalates to Critical (so the re-run executes with
      // maximum shedding instead of re-failing the same way). Uncounted
      // against the transient retry budget; recorded in the shard trail.
      if (govern::MemoryBudget* governor = govern::global_governor();
          governor != nullptr && !st.degraded_retry_granted &&
          is_retryable_with_degradation(status.code())) {
        governor->record_allocation_failure();
        st.degraded_retry_granted = true;
        ++report.degraded_retries;
        ++summary_.degraded_retries;
        pending.push_back(shard);
        continue;
      }

      // Deterministic (or retry-exhausted) failure: isolate the culprits.
      if (!options_.quarantine_enabled) {
        throw SupervisionError{"shard " + std::to_string(shard) + " of day " +
                               std::to_string(day) +
                               " failed and quarantine is disabled: " +
                               status.to_string()};
      }
      if (++st.bisection_rounds > options_.max_bisection_rounds) {
        throw SupervisionError{"shard " + std::to_string(shard) + " of day " +
                               std::to_string(day) + " still failing after " +
                               std::to_string(options_.max_bisection_rounds) +
                               " bisection rounds: " + status.to_string()};
      }
      isolate(day, shard, st, skip, report, probe);
      // Whether bisection condemned items or the failure refused to
      // reproduce (flaky beyond the retry budget), re-run the shard over
      // the survivors with a fresh retry budget.
      st.attempt = 0;
      pending.push_back(shard);
    }
    std::sort(pending.begin(), pending.end());
    pending.erase(std::unique(pending.begin(), pending.end()), pending.end());
  }

  // Every shard has a staged result: fold them in, in canonical order.
  for (std::size_t shard = 0; shard < shards; ++shard) merge(shard);

  for (std::size_t shard = 0; shard < shards; ++shard) {
    ShardOutcome outcome;
    outcome.shard = shard;
    outcome.first = states[shard].first;
    outcome.last = states[shard].last;
    outcome.status = Status::ok();
    outcome.attempts = states[shard].total_attempts;
    outcome.trail = std::move(states[shard].trail);
    report.outcomes.push_back(std::move(outcome));
  }
  std::sort(report.quarantined.begin(), report.quarantined.end(),
            [](const QuarantinedItem& a, const QuarantinedItem& b) {
              return a.item < b.item;
            });

  ++summary_.days;
  if (report.degraded()) ++summary_.degraded_days;
  for (const QuarantinedItem& q : report.quarantined) {
    summary_.quarantine.items.push_back(q);
  }
  std::sort(summary_.quarantine.items.begin(), summary_.quarantine.items.end(),
            [](const QuarantinedItem& a, const QuarantinedItem& b) {
              return a.item != b.item ? a.item < b.item : a.day < b.day;
            });

  obs_attempts_.inc(summary_.shard_attempts - attempts_before);
  obs_retries_.inc(report.retries);
  obs_timeouts_.inc(report.timeouts);
  obs_probes_.inc(report.bisection_probes);
  obs_quarantined_.inc(report.quarantined.size());
  obs_quarantine_size_.set(static_cast<double>(summary_.quarantine.items.size()));
  return report;
}

}  // namespace tl::supervise
