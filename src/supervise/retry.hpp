#pragma once

// Standalone retry helper for single supervised operations.
//
// StudySupervisor owns the retry/bisect/quarantine machinery for shard
// *fleets*; the serve-mode tailer needs the same transient-vs-permanent
// discipline for one long-lived operation (a WAL poll, a checkpoint write)
// without dragging in shard bookkeeping. run_with_retries() is that slice:
// classify the failure with the shared taxonomy (status.hpp), back off with
// the same capped-exponential seeded-jitter schedule the supervisor uses,
// optionally arm a per-attempt deadline through a CancelToken, and give up
// with a typed Status instead of an exception.
//
// Crash semantics match the supervisor: io::SimulatedCrash is never
// absorbed — it propagates out so chaos harnesses see the process "die".

#include <cstdint>
#include <functional>
#include <string>

#include "supervise/cancellation.hpp"
#include "supervise/status.hpp"

namespace tl::supervise {

struct RetryPolicy {
  /// Attempts = 1 + max_retries; only retryable Status codes re-attempt.
  int max_retries = 4;
  /// Capped exponential backoff between attempts, scaled by a seeded jitter
  /// in [0.5, 1.5): min(cap, initial * multiplier^(retry-1)).
  std::uint64_t backoff_initial_ms = 5;
  std::uint64_t backoff_cap_ms = 200;
  double backoff_multiplier = 2.0;
  std::uint64_t jitter_seed = 0x5eedULL;
  /// Per-attempt deadline; 0 disables. When set, a watchdog thread cancels
  /// the attempt's token with kDeadlineExceeded after this many ms — the
  /// operation must poll the token to honor it (cooperative, like shards).
  std::uint64_t attempt_deadline_ms = 0;
};

struct RetryReport {
  Status status;       ///< final outcome (ok, or the last failure)
  int attempts = 0;    ///< total attempts made (>= 1 unless max_retries < 0)
  int retries = 0;     ///< attempts beyond the first
  int timeouts = 0;    ///< attempts that ended in kDeadlineExceeded
  /// Extra attempts granted after a kResourceExhausted failure escalated
  /// the global governor to Critical (at most one per run_with_retries).
  int degraded_retries = 0;
  bool ok() const noexcept { return status.is_ok(); }
};

/// Runs `fn` until it succeeds, a permanent failure is classified, or
/// retries are exhausted. `what` labels the operation in Status messages.
/// The token passed to `fn` is fresh per attempt; poll it in long loops.
/// io::SimulatedCrash propagates without being counted as an attempt
/// outcome (the "process" is dead; there is no one left to retry).
RetryReport run_with_retries(const RetryPolicy& policy, const std::string& what,
                             const std::function<void(const CancelToken&)>& fn);

/// The backoff a given retry sleeps (jitter included); exposed for tests.
std::uint64_t retry_backoff_ms(const RetryPolicy& policy, int attempt);

}  // namespace tl::supervise
