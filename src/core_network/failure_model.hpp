#pragma once

// The generative HOF-rate model (§6.3's ground truth).
//
// Per-handover failure probability = base rate of the target RAT class
// (medians from the paper's sector-day dataset: 0.04% intra, 5.85% to 3G,
// 21.42% to 2G) x a stable lognormal sector-day multiplier x vendor, area,
// region, load-hour and per-device effects. The analysis layer must then
// *recover* these effects from the simulated records — the Table 4/5/7/8/9
// regressions and the ANOVA/Kruskal-Wallis tests.

#include <cstdint>

#include "faults/fault_schedule.hpp"
#include "geo/district.hpp"
#include "geo/region.hpp"
#include "topology/rat.hpp"
#include "topology/vendor.hpp"
#include "util/sim_time.hpp"

namespace tl::corenet {

struct FailureContext {
  topology::ObservedRat target = topology::ObservedRat::kG45Nsa;
  topology::Vendor vendor = topology::Vendor::kV1;
  geo::AreaType area = geo::AreaType::kUrban;
  geo::Region region = geo::Region::kCapital;
  std::uint32_t source_sector = 0;
  int day = 0;
  /// Exact attempt time; lets the fault schedule match incident windows at
  /// finer than day granularity.
  util::TimestampMs time = 0;
  /// Target-sector overload rejection probability (LoadModel output).
  double overload = 0.0;
  /// Per-device HOF multiplier (manufacturer x individual).
  double ue_hof_multiplier = 1.0;
};

struct FailureModelConfig {
  /// Median per-HO failure probability per target class.
  double base_intra = 4.0e-4;
  double base_3g = 5.85e-2;
  double base_2g = 0.2142;
  /// Log-scale sigma of the stable sector-day multiplier. Intra 4G/5G HOFs
  /// are burstier (radio-layer incidents strike individual sector-days), so
  /// their dispersion is larger: medians stay at the configured bases while
  /// the national failure volume lands on the paper's 75/25 split between
  /// the 3G path and the intra path.
  double sector_day_sigma = 1.1;
  double sector_day_sigma_intra = 1.9;
  /// Rural multiplier (urban = 1).
  double rural_multiplier = 1.30;
  std::uint64_t seed = 0xf41;
};

class FailureModel {
 public:
  explicit FailureModel(const FailureModelConfig& config = {}) : config_(config) {}

  /// Probability that this handover fails; clamped to [0, 0.92].
  double failure_probability(const FailureContext& context) const noexcept;

  /// Stable lognormal multiplier for (sector, day); median 1. Deterministic,
  /// so every HO through the same sector on the same day shares the same
  /// "bad day" factor — which is what creates the sector-day HOF-rate
  /// dispersion of Table 6 / Fig. 16.
  double sector_day_multiplier(std::uint32_t sector, int day,
                               topology::ObservedRat target) const noexcept;

  static double region_multiplier(geo::Region region) noexcept;

  /// Installs (or clears) a fault-injection schedule; borrowed. Active
  /// incidents whose scope matches an attempt (source sector, vendor,
  /// region) multiply its failure probability, so injected faults produce
  /// records, causes and durations exactly like organic failures.
  void set_fault_schedule(const faults::FaultSchedule* schedule) noexcept {
    faults_ = schedule;
  }
  const faults::FaultSchedule* fault_schedule() const noexcept { return faults_; }

  const FailureModelConfig& config() const noexcept { return config_; }

 private:
  FailureModelConfig config_;
  const faults::FaultSchedule* faults_ = nullptr;
};

}  // namespace tl::corenet
