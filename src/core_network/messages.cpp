#include "core_network/messages.hpp"

namespace tl::corenet {

std::string_view to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::kMeasurementReport: return "Measurement Report";
    case MessageType::kHoDecision: return "HO Decision";
    case MessageType::kHoRequired: return "HO Required";
    case MessageType::kForwardRelocationRequest: return "Forward Relocation Request";
    case MessageType::kPsToCsRequest: return "PS to CS Request";
    case MessageType::kPsToCsResponse: return "PS to CS Response";
    case MessageType::kHoRequest: return "HO Request";
    case MessageType::kHoRequestAck: return "HO Request Ack";
    case MessageType::kHoCommand: return "HO Command (RRC Reconfiguration)";
    case MessageType::kRachPreamble: return "RACH Preamble";
    case MessageType::kHoConfirm: return "HO Confirm";
    case MessageType::kHoNotify: return "HO Notify";
    case MessageType::kPathSwitchRequest: return "Path Switch Request";
    case MessageType::kForwardRelocationComplete: return "Forward Relocation Complete";
    case MessageType::kUeContextRelease: return "UE Context Release";
    case MessageType::kHoCancel: return "HO Cancel";
    case MessageType::kS1apInitialUeMessage: return "S1AP Initial UE Message";
    case MessageType::kHoFailureIndication: return "HO Failure Indication";
    case MessageType::kSgNbReleaseRequest: return "SgNB Release Request";
    case MessageType::kSgNbAdditionRequest: return "SgNB Addition Request";
    case MessageType::kSgNbAdditionRequestAck: return "SgNB Addition Request Ack";
    case MessageType::kSgNbReconfigurationComplete: return "SgNB Reconfiguration Complete";
  }
  return "?";
}

}  // namespace tl::corenet
