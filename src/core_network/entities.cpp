#include "core_network/entities.hpp"

namespace tl::corenet {

CoreNetwork::CoreNetwork() {
  for (const geo::Region r : geo::kAllRegions) {
    const auto i = static_cast<std::size_t>(r);
    mmes_[i].region = r;
    sgsns_[i].region = r;
    mscs_[i].region = r;
    sgws_[i].region = r;
  }
}

void CoreNetwork::record_handover(geo::Region region, topology::ObservedRat target,
                                  bool success, bool srvcc) noexcept {
  const auto i = static_cast<std::size_t>(region);
  mmes_[i].handovers.record(success);
  switch (target) {
    case topology::ObservedRat::kG45Nsa:
      mmes_[i].path_switches.record(success);
      if (success) ++sgws_[i].bearer_modifications;
      break;
    case topology::ObservedRat::kG3:
    case topology::ObservedRat::kG2:
      sgsns_[i].relocations.record(success);
      break;
  }
  if (srvcc) mscs_[i].srvcc.record(success);
}

void CoreNetwork::accumulate(const CoreNetwork& other) noexcept {
  for (const geo::Region r : geo::kAllRegions) {
    const auto i = static_cast<std::size_t>(r);
    mmes_[i].handovers += other.mmes_[i].handovers;
    mmes_[i].path_switches += other.mmes_[i].path_switches;
    sgsns_[i].relocations += other.sgsns_[i].relocations;
    mscs_[i].srvcc += other.mscs_[i].srvcc;
    sgws_[i].bearer_modifications += other.sgws_[i].bearer_modifications;
  }
}

std::uint64_t CoreNetwork::total_handovers() const noexcept {
  std::uint64_t total = 0;
  for (const auto& m : mmes_) total += m.handovers.procedures;
  return total;
}

}  // namespace tl::corenet
