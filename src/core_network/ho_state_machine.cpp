#include "core_network/ho_state_machine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tl::corenet {

using topology::ObservedRat;

HoOutcome HandoverProcedure::execute(const HoAttempt& attempt, CoreNetwork& core,
                                     util::Rng& rng, MessageTrace* trace) const {
  if (attempt.ue == nullptr) throw std::invalid_argument{"HoAttempt: null UE"};

  FailureContext fctx;
  fctx.target = attempt.target_rat;
  fctx.vendor = attempt.source_vendor;
  fctx.area = attempt.area;
  fctx.region = attempt.region;
  fctx.source_sector = attempt.source_sector;
  fctx.day = util::SimCalendar::day_index(attempt.time);
  fctx.time = attempt.time;
  fctx.overload = attempt.target_overload;
  fctx.ue_hof_multiplier = attempt.ue->hof_multiplier;
  // An SRVCC attempt without the subscription cannot succeed: the service
  // check in preparation rejects it (Cause #6's mechanism).
  const bool doomed_srvcc = attempt.srvcc && !attempt.ue->srvcc_subscribed;
  const double p_fail = doomed_srvcc ? 1.0 : failure_model_.failure_probability(fctx);

  HoOutcome outcome;
  outcome.success = !rng.chance(p_fail);
  if (outcome.success) {
    outcome.duration_ms = durations_.success_duration_ms(attempt.target_rat, rng);
    // EN-DC: releasing and re-adding the 5G secondary node costs extra
    // signaling round-trips (~15% on the paper's tens-of-ms intra HOs).
    if (attempt.endc) outcome.duration_ms *= 1.0 + 0.15 * rng.uniform(0.6, 1.4);
  } else if (doomed_srvcc) {
    // The subscriber-data check fails before any signaling starts.
    outcome.cause = kCause6SrvccNotSubscribed;
    outcome.duration_ms = 0.0;
  } else {
    CauseContext cctx;
    cctx.target = attempt.target_rat;
    cctx.device = attempt.ue->type;
    cctx.area = attempt.area;
    cctx.hour = util::SimCalendar::hour_of_day(attempt.time);
    cctx.overload = attempt.target_overload;
    cctx.srvcc_attempt = attempt.srvcc;
    cctx.srvcc_subscribed = attempt.ue->srvcc_subscribed;
    outcome.cause = causes_.sample(cctx, rng);
    outcome.duration_ms = durations_.failure_duration_ms(outcome.cause, rng);
  }

  core.record_handover(attempt.region, attempt.target_rat, outcome.success, attempt.srvcc);
  if (trace != nullptr) emit_trace(attempt, outcome, *trace);
  return outcome;
}

void HandoverProcedure::emit_trace(const HoAttempt& attempt, const HoOutcome& outcome,
                                   MessageTrace& trace) const {
  const bool inter_rat = attempt.target_rat != ObservedRat::kG45Nsa;

  // Assemble the full Fig. 1 sequence for this HO flavor, then truncate at
  // the step where the failure cause strikes.
  std::vector<MessageType> steps{MessageType::kMeasurementReport, MessageType::kHoDecision,
                                 MessageType::kHoRequired};
  if (attempt.endc) steps.push_back(MessageType::kSgNbReleaseRequest);
  if (inter_rat) steps.push_back(MessageType::kForwardRelocationRequest);
  if (attempt.srvcc) {
    steps.push_back(MessageType::kPsToCsRequest);
    steps.push_back(MessageType::kPsToCsResponse);
  }
  steps.push_back(MessageType::kHoRequest);
  steps.push_back(MessageType::kHoRequestAck);
  steps.push_back(MessageType::kHoCommand);
  steps.push_back(MessageType::kRachPreamble);
  steps.push_back(MessageType::kHoConfirm);
  if (inter_rat) {
    steps.push_back(MessageType::kForwardRelocationComplete);
  } else {
    steps.push_back(MessageType::kHoNotify);
    steps.push_back(MessageType::kPathSwitchRequest);
    if (attempt.endc) {
      // Secondary node re-established on the target anchor.
      steps.push_back(MessageType::kSgNbAdditionRequest);
      steps.push_back(MessageType::kSgNbAdditionRequestAck);
      steps.push_back(MessageType::kSgNbReconfigurationComplete);
    }
  }
  steps.push_back(MessageType::kUeContextRelease);

  std::size_t cut = steps.size();          // success: full sequence
  MessageType epilogue = MessageType::kUeContextRelease;
  bool has_epilogue = false;
  if (!outcome.success) {
    const auto cut_after = [&](MessageType type) {
      const auto it = std::find(steps.begin(), steps.end(), type);
      cut = it == steps.end() ? steps.size() : static_cast<std::size_t>(it - steps.begin()) + 1;
    };
    has_epilogue = true;
    switch (outcome.cause) {
      case kCause3InvalidTargetId:
      case kCause6SrvccNotSubscribed:
        cut_after(MessageType::kHoRequired);
        epilogue = MessageType::kHoFailureIndication;
        break;
      case kCause2InterferingInitialUe:
        cut_after(MessageType::kHoRequired);
        epilogue = MessageType::kS1apInitialUeMessage;
        break;
      case kCause4TargetLoadTooHigh:
        cut_after(MessageType::kHoRequest);
        epilogue = MessageType::kHoFailureIndication;
        break;
      case kCause1SourceCancelled:
        cut_after(MessageType::kHoCommand);
        epilogue = MessageType::kHoCancel;
        break;
      case kCause7PsToCsFailure:
        cut_after(MessageType::kPsToCsResponse);
        epilogue = MessageType::kHoFailureIndication;
        break;
      case kCause8RelocationTimeout:
        cut_after(MessageType::kHoConfirm);
        epilogue = MessageType::kHoFailureIndication;
        break;
      default:
        cut_after(MessageType::kHoRequestAck);
        epilogue = MessageType::kHoFailureIndication;
        break;
    }
  }

  // Spread step timestamps across the measured signaling time.
  const std::size_t emitted = cut + (has_epilogue ? 1 : 0);
  const double step_ms =
      emitted > 1 ? outcome.duration_ms / static_cast<double>(emitted - 1) : 0.0;
  for (std::size_t i = 0; i < cut; ++i) {
    trace.push_back({steps[i],
                     attempt.time + static_cast<util::TimestampMs>(step_ms * i),
                     attempt.source_sector, attempt.target_sector});
  }
  if (has_epilogue) {
    trace.push_back({epilogue,
                     attempt.time + static_cast<util::TimestampMs>(outcome.duration_ms),
                     attempt.source_sector, attempt.target_sector});
  }
}

}  // namespace tl::corenet
