#pragma once

// Control-plane signaling message vocabulary for the HO procedure (Fig. 1),
// S1AP/GTPv2-C flavored. The state machine records these for inspection;
// bulk simulation runs with tracing off.

#include <cstdint>
#include <string_view>
#include <vector>

#include "topology/sector.hpp"
#include "util/sim_time.hpp"

namespace tl::corenet {

enum class MessageType : std::uint8_t {
  kMeasurementReport = 0,
  kHoDecision,               // source RAN picks the target
  kHoRequired,               // source -> MME
  kForwardRelocationRequest, // MME -> SGSN (inter-RAT)
  kPsToCsRequest,            // MME -> MSC (SRVCC)
  kPsToCsResponse,           // MSC -> MME
  kHoRequest,                // MME/target side admission
  kHoRequestAck,
  kHoCommand,                // RRC Connection Reconfiguration toward the UE
  kRachPreamble,             // UE synchronizes to the target
  kHoConfirm,
  kHoNotify,                 // target -> MME
  kPathSwitchRequest,
  kForwardRelocationComplete,
  kUeContextRelease,
  kHoCancel,
  kS1apInitialUeMessage,     // the interferer behind Cause #2
  kHoFailureIndication,
  // EN-DC (EUTRA-NR Dual Connectivity, TS 37.340): the 4G master node adds
  // or releases the 5G secondary node around the handover — the extra
  // signaling the paper flags as a 5G-NSA complexity (§8).
  kSgNbReleaseRequest,
  kSgNbAdditionRequest,
  kSgNbAdditionRequestAck,
  kSgNbReconfigurationComplete,
};

std::string_view to_string(MessageType type) noexcept;

struct SignalingMessage {
  MessageType type = MessageType::kMeasurementReport;
  util::TimestampMs time = 0;
  topology::SectorId source_sector = 0;
  topology::SectorId target_sector = 0;
};

using MessageTrace = std::vector<SignalingMessage>;

}  // namespace tl::corenet
