#pragma once

// Handover-failure cause catalog (§6.2).
//
// The paper collects 1k+ distinct 3GPP + vendor-specific cause descriptions
// and finds that 8 of them explain 92% of all failures. This module carries
// those 8 as first-class citizens — with their per-HO-type, per-area,
// per-device conditional propensities (Figs. 14a, 15) — plus a generated
// long tail of vendor sub-causes for the remaining 8%.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "devices/device_type.hpp"
#include "geo/district.hpp"
#include "topology/rat.hpp"
#include "util/rng.hpp"

namespace tl::corenet {

using CauseId = std::uint16_t;

inline constexpr CauseId kCauseNone = 0;  // success sentinel
inline constexpr CauseId kCause1SourceCancelled = 1;
inline constexpr CauseId kCause2InterferingInitialUe = 2;
inline constexpr CauseId kCause3InvalidTargetId = 3;
inline constexpr CauseId kCause4TargetLoadTooHigh = 4;
inline constexpr CauseId kCause5MmeDetectedFailure = 5;
inline constexpr CauseId kCause6SrvccNotSubscribed = 6;
inline constexpr CauseId kCause7PsToCsFailure = 7;
inline constexpr CauseId kCause8RelocationTimeout = 8;
inline constexpr CauseId kFirstTailCause = 100;

constexpr bool is_dominant_cause(CauseId c) noexcept { return c >= 1 && c <= 8; }

/// Everything the cause distribution conditions on.
struct CauseContext {
  topology::ObservedRat target = topology::ObservedRat::kG45Nsa;
  devices::DeviceType device = devices::DeviceType::kSmartphone;
  geo::AreaType area = geo::AreaType::kUrban;
  int hour = 12;
  /// Target-sector overload rejection probability at this instant (drives
  /// Cause #4's peak-hour and dense-urban concentration).
  double overload = 0.0;
  /// The procedure is an SRVCC voice handover / the UE holds the service.
  bool srvcc_attempt = false;
  bool srvcc_subscribed = true;
};

class CauseCatalog {
 public:
  explicit CauseCatalog(std::uint64_t seed = 0xca05e, std::size_t tail_causes = 1100);

  /// Samples a failure cause for a HO that has been decided to fail.
  CauseId sample(const CauseContext& context, util::Rng& rng) const;

  /// Human-readable description, 3GPP-flavored for the dominant causes and
  /// vendor-flavored for the tail.
  std::string_view description(CauseId cause) const;

  /// Total number of distinct causes the catalog can emit (paper: 1k+).
  std::size_t total_causes() const noexcept { return 8 + tail_descriptions_.size(); }

  /// Conditional weights over {#1..#8, tail}; exposed for tests.
  std::array<double, 9> weights(const CauseContext& context) const;

 private:
  std::vector<std::string> tail_descriptions_;
  /// Zipf CDF over tail causes: a few sub-causes recur, most are rare.
  std::vector<double> tail_cdf_;
};

}  // namespace tl::corenet
