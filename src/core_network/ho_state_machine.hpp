#pragma once

// The handover procedure of Fig. 1, executed per attempt.
//
// Given a prepared attempt (source/target sectors, target RAT class, SRVCC
// flag, local context), the procedure decides success/failure through the
// FailureModel, draws a cause and signaling time, books the involved core
// entities, and — when tracing is enabled — emits the full Fig. 1 message
// sequence, truncated at the step where the chosen cause strikes.

#include "core_network/duration_model.hpp"
#include "core_network/entities.hpp"
#include "core_network/failure_causes.hpp"
#include "core_network/failure_model.hpp"
#include "core_network/messages.hpp"
#include "devices/population.hpp"
#include "topology/sector.hpp"
#include "util/sim_time.hpp"

namespace tl::corenet {

struct HoAttempt {
  const devices::Ue* ue = nullptr;
  topology::SectorId source_sector = 0;
  topology::SectorId target_sector = 0;
  topology::ObservedRat target_rat = topology::ObservedRat::kG45Nsa;
  topology::Vendor source_vendor = topology::Vendor::kV1;
  geo::AreaType area = geo::AreaType::kUrban;
  geo::Region region = geo::Region::kCapital;
  util::TimestampMs time = 0;
  /// Overload rejection probability at the target right now.
  double target_overload = 0.0;
  bool srvcc = false;
  /// EN-DC: the UE holds a 5G secondary node through this HO (TS 37.340);
  /// the procedure gains SgNB release/addition legs and runs longer.
  bool endc = false;
};

struct HoOutcome {
  bool success = true;
  CauseId cause = kCauseNone;
  double duration_ms = 0.0;
};

class HandoverProcedure {
 public:
  HandoverProcedure(const FailureModel& failure_model, const DurationModel& durations,
                    const CauseCatalog& causes)
      : failure_model_(failure_model), durations_(durations), causes_(causes) {}

  /// Runs one HO; deterministic given `rng` state. Appends the signaling
  /// sequence to `trace` when non-null.
  HoOutcome execute(const HoAttempt& attempt, CoreNetwork& core, util::Rng& rng,
                    MessageTrace* trace = nullptr) const;

 private:
  void emit_trace(const HoAttempt& attempt, const HoOutcome& outcome,
                  MessageTrace& trace) const;

  const FailureModel& failure_model_;
  const DurationModel& durations_;
  const CauseCatalog& causes_;
};

}  // namespace tl::corenet
