#include "core_network/duration_model.hpp"

namespace tl::corenet {

namespace {

/// (median, p95) in milliseconds.
constexpr double kIntraMedian = 43.0, kIntraP95 = 90.0;
constexpr double k3gMedian = 412.0, k3gP95 = 1'050.0;
constexpr double k2gMedian = 1'000.0, k2gP95 = 3'800.0;
constexpr double kCancelMedian = 1'500.0, kCancelP95 = 5'500.0;
constexpr double kInterfereMedian = 1'900.0, kInterfereP95 = 6'000.0;
constexpr double kOverloadMedian = 81.0, kOverloadP95 = 97.0;
constexpr double kMmeMedian = 350.0, kMmeP95 = 1'600.0;
constexpr double kPsToCsMedian = 600.0, kPsToCsP95 = 2'400.0;
constexpr double kTimeoutMedian = 10'050.0, kTimeoutP95 = 10'180.0;
constexpr double kTailMedian = 250.0, kTailP95 = 2'200.0;

}  // namespace

DurationModel::DurationModel()
    : success_intra_(util::LogNormal::from_median_p95(kIntraMedian, kIntraP95)),
      success_3g_(util::LogNormal::from_median_p95(k3gMedian, k3gP95)),
      success_2g_(util::LogNormal::from_median_p95(k2gMedian, k2gP95)),
      fail_cancel_(util::LogNormal::from_median_p95(kCancelMedian, kCancelP95)),
      fail_interfere_(util::LogNormal::from_median_p95(kInterfereMedian, kInterfereP95)),
      fail_overload_(util::LogNormal::from_median_p95(kOverloadMedian, kOverloadP95)),
      fail_mme_(util::LogNormal::from_median_p95(kMmeMedian, kMmeP95)),
      fail_ps_to_cs_(util::LogNormal::from_median_p95(kPsToCsMedian, kPsToCsP95)),
      fail_timeout_(util::LogNormal::from_median_p95(kTimeoutMedian, kTimeoutP95)),
      fail_tail_(util::LogNormal::from_median_p95(kTailMedian, kTailP95)) {}

double DurationModel::success_duration_ms(topology::ObservedRat target,
                                          util::Rng& rng) const {
  switch (target) {
    case topology::ObservedRat::kG45Nsa: return success_intra_.sample(rng);
    case topology::ObservedRat::kG3: return success_3g_.sample(rng);
    case topology::ObservedRat::kG2: return success_2g_.sample(rng);
  }
  return success_intra_.sample(rng);
}

double DurationModel::failure_duration_ms(CauseId cause, util::Rng& rng) const {
  switch (cause) {
    case kCause1SourceCancelled: return fail_cancel_.sample(rng);
    case kCause2InterferingInitialUe: return fail_interfere_.sample(rng);
    case kCause3InvalidTargetId: return 0.0;  // rejected before initiation
    case kCause4TargetLoadTooHigh: return fail_overload_.sample(rng);
    case kCause5MmeDetectedFailure: return fail_mme_.sample(rng);
    case kCause6SrvccNotSubscribed: return 0.0;  // service check precedes signaling
    case kCause7PsToCsFailure: return fail_ps_to_cs_.sample(rng);
    case kCause8RelocationTimeout: return fail_timeout_.sample(rng);
    default: return fail_tail_.sample(rng);
  }
}

DurationModel::Calibration DurationModel::success_calibration(
    topology::ObservedRat target) noexcept {
  switch (target) {
    case topology::ObservedRat::kG45Nsa: return {kIntraMedian, kIntraP95};
    case topology::ObservedRat::kG3: return {k3gMedian, k3gP95};
    case topology::ObservedRat::kG2: return {k2gMedian, k2gP95};
  }
  return {};
}

DurationModel::Calibration DurationModel::failure_calibration(CauseId cause) noexcept {
  switch (cause) {
    case kCause1SourceCancelled: return {kCancelMedian, kCancelP95};
    case kCause2InterferingInitialUe: return {kInterfereMedian, kInterfereP95};
    case kCause3InvalidTargetId: return {0.0, 0.0};
    case kCause4TargetLoadTooHigh: return {kOverloadMedian, kOverloadP95};
    case kCause5MmeDetectedFailure: return {kMmeMedian, kMmeP95};
    case kCause6SrvccNotSubscribed: return {0.0, 0.0};
    case kCause7PsToCsFailure: return {kPsToCsMedian, kPsToCsP95};
    case kCause8RelocationTimeout: return {kTimeoutMedian, kTimeoutP95};
    default: return {kTailMedian, kTailP95};
  }
}

}  // namespace tl::corenet
