#pragma once

// Core-network entities (Fig. 2's measurement points): the MME tracks 4G /
// 5G-NSA mobility, the SGSN manages the 2G/3G packet domain, the MSC owns
// circuit-switched voice (SRVCC's far end), and the SGW forwards the user
// plane. One pool of each per region, as MNOs deploy them.
//
// Entities are passive observers in the simulator: the HO state machine
// routes each procedure through the right pair and bumps their counters,
// which is exactly the vantage point the paper's probes tap.

#include <array>
#include <cstdint>
#include <string>

#include "geo/region.hpp"
#include "topology/rat.hpp"

namespace tl::corenet {

struct EntityCounters {
  std::uint64_t procedures = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;

  void record(bool success) noexcept {
    ++procedures;
    (success ? successes : failures)++;
  }
  /// Folds another counter set into this one (shard-reduce).
  EntityCounters& operator+=(const EntityCounters& other) noexcept {
    procedures += other.procedures;
    successes += other.successes;
    failures += other.failures;
    return *this;
  }
  double failure_rate() const noexcept {
    return procedures ? static_cast<double>(failures) / static_cast<double>(procedures)
                      : 0.0;
  }
};

struct Mme {
  geo::Region region = geo::Region::kNorth;
  EntityCounters handovers;     // all HOs anchored at this MME
  EntityCounters path_switches; // intra 4G/5G-NSA completions
};

struct Sgsn {
  geo::Region region = geo::Region::kNorth;
  EntityCounters relocations;  // inter-RAT HOs toward 2G/3G
};

struct Msc {
  geo::Region region = geo::Region::kNorth;
  EntityCounters srvcc;  // PS->CS voice continuity procedures
};

struct Sgw {
  geo::Region region = geo::Region::kNorth;
  std::uint64_t bearer_modifications = 0;
};

/// The regional core: every HO procedure is routed through the MME of the
/// source sector's region and, for inter-RAT targets, the matching SGSN/MSC.
class CoreNetwork {
 public:
  CoreNetwork();

  Mme& mme(geo::Region r) noexcept { return mmes_[static_cast<std::size_t>(r)]; }
  Sgsn& sgsn(geo::Region r) noexcept { return sgsns_[static_cast<std::size_t>(r)]; }
  Msc& msc(geo::Region r) noexcept { return mscs_[static_cast<std::size_t>(r)]; }
  Sgw& sgw(geo::Region r) noexcept { return sgws_[static_cast<std::size_t>(r)]; }

  const Mme& mme(geo::Region r) const noexcept {
    return mmes_[static_cast<std::size_t>(r)];
  }
  const Sgsn& sgsn(geo::Region r) const noexcept {
    return sgsns_[static_cast<std::size_t>(r)];
  }
  const Msc& msc(geo::Region r) const noexcept {
    return mscs_[static_cast<std::size_t>(r)];
  }
  const Sgw& sgw(geo::Region r) const noexcept {
    return sgws_[static_cast<std::size_t>(r)];
  }

  /// Books one HO procedure into the entities it traverses.
  void record_handover(geo::Region region, topology::ObservedRat target, bool success,
                       bool srvcc) noexcept;

  /// Folds `other`'s counters into this core (per region, per entity). The
  /// parallel engine gives each population shard a private CoreNetwork and
  /// reduces them in shard order — counter addition is exact integer math,
  /// so the reduced totals match the serial run bit for bit with no
  /// dependence on worker scheduling or atomic-update interleaving.
  void accumulate(const CoreNetwork& other) noexcept;

  std::uint64_t total_handovers() const noexcept;

 private:
  std::array<Mme, 4> mmes_;
  std::array<Sgsn, 4> sgsns_;
  std::array<Msc, 4> mscs_;
  std::array<Sgw, 4> sgws_;
};

}  // namespace tl::corenet
