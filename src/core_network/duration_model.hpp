#pragma once

// Handover signaling-time model.
//
// Successful HOs (Fig. 8): intra 4G/5G-NSA completes in tens of ms (median
// 43 ms, p95 ~90 ms); fallback to 3G is an order of magnitude slower
// (median 412 ms, p95 >1 s); fallback to 2G slower still (median ~1 s,
// p95 3.8 s). Failed HOs (Fig. 14b) take cause-specific times: #3/#6 abort
// before initiation (0 ms), #4 rejects at admission (~81 ms median), #1/#2
// drag for seconds, #8 is a ~10 s relocation timeout.

#include "core_network/failure_causes.hpp"
#include "topology/rat.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace tl::corenet {

class DurationModel {
 public:
  DurationModel();

  /// Signaling time (ms) of a successful HO toward `target`.
  double success_duration_ms(topology::ObservedRat target, util::Rng& rng) const;

  /// Signaling time (ms) of a HO that failed with `cause`.
  double failure_duration_ms(CauseId cause, util::Rng& rng) const;

  /// Calibration medians/p95s exposed for tests and benches.
  struct Calibration {
    double median_ms = 0;
    double p95_ms = 0;
  };
  static Calibration success_calibration(topology::ObservedRat target) noexcept;
  static Calibration failure_calibration(CauseId cause) noexcept;

 private:
  util::LogNormal success_intra_;
  util::LogNormal success_3g_;
  util::LogNormal success_2g_;
  util::LogNormal fail_cancel_;      // #1
  util::LogNormal fail_interfere_;   // #2
  util::LogNormal fail_overload_;    // #4
  util::LogNormal fail_mme_;         // #5
  util::LogNormal fail_ps_to_cs_;    // #7
  util::LogNormal fail_timeout_;     // #8
  util::LogNormal fail_tail_;        // vendor sub-causes
};

}  // namespace tl::corenet
