#include "core_network/failure_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/hash.hpp"

namespace tl::corenet {

double FailureModel::region_multiplier(geo::Region region) noexcept {
  // Calibrated against the Table 5 region coefficients: West runs markedly
  // hotter (coef +0.40), North slightly cooler, relative to the capital.
  switch (region) {
    case geo::Region::kCapital: return 1.00;
    case geo::Region::kNorth: return 0.93;
    case geo::Region::kSouth: return 0.98;
    case geo::Region::kWest: return 1.49;
  }
  return 1.0;
}

double FailureModel::sector_day_multiplier(std::uint32_t sector, int day,
                                           topology::ObservedRat target) const noexcept {
  const std::uint64_t h = util::anonymize(
      static_cast<std::uint64_t>(sector) * 1'000'003ULL + static_cast<std::uint64_t>(day),
      config_.seed);
  // Map the hash to a uniform in (0,1), then through the normal quantile to
  // a deterministic lognormal draw with median 1.
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  const double sigma = target == topology::ObservedRat::kG45Nsa
                           ? config_.sector_day_sigma_intra
                           : config_.sector_day_sigma;
  return std::exp(sigma * util::normal_quantile(u));
}

double FailureModel::failure_probability(const FailureContext& context) const noexcept {
  double base = config_.base_intra;
  switch (context.target) {
    case topology::ObservedRat::kG45Nsa: base = config_.base_intra; break;
    case topology::ObservedRat::kG3: base = config_.base_3g; break;
    case topology::ObservedRat::kG2: base = config_.base_2g; break;
  }
  double p = base;
  p *= sector_day_multiplier(context.source_sector, context.day, context.target);
  p *= topology::vendor_hof_multiplier(context.vendor);
  p *= context.area == geo::AreaType::kRural ? config_.rural_multiplier : 1.0;
  p *= region_multiplier(context.region);
  p *= 1.0 + 2.5 * std::clamp(context.overload, 0.0, 1.0);
  p *= std::max(context.ue_hof_multiplier, 0.0);
  if (faults_ != nullptr && !faults_->empty()) {
    p *= faults_->hof_multiplier(context.source_sector, context.vendor, context.region,
                                 context.time);
  }
  return std::clamp(p, 0.0, 0.92);
}

}  // namespace tl::corenet
