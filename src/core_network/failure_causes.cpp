#include "core_network/failure_causes.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/distributions.hpp"

namespace tl::corenet {

namespace {

using devices::DeviceType;
using geo::AreaType;
using topology::ObservedRat;

constexpr std::array<std::string_view, 8> kDominantDescriptions{
    "The source sector canceled the HO",
    "The signaling procedure was aborted due to interfering S1AP Initial UE Message",
    "Signaling procedure was rejected due to invalid target sector ID",
    "Load on target sector is too high",
    "MME detects a HO-related failure in the target MME, SGW, PGW, cell, or system",
    "The SRVCC service is not subscribed by the UE",
    "The MSC responds with PS to CS Response with cause indicating failure",
    "No Forward Relocation Complete or Notification was received before the max time "
    "for waiting for the relocation completion expires",
};

/// Base weights over {#1..#8, tail} per target RAT class, before context
/// modulation. Calibrated so the national aggregates land on Fig. 14a:
/// #3 dominates intra failures, #4 dominates fallback-to-3G failures, and
/// the tail stays near 8% overall.
constexpr std::array<double, 9> base_weights(ObservedRat target) noexcept {
  switch (target) {
    case ObservedRat::kG45Nsa: return {3.0, 8.0, 65.0, 8.0, 5.0, 0.0, 0.0, 4.0, 7.0};
    case ObservedRat::kG3: return {11.0, 4.0, 1.0, 30.0, 18.0, 8.0, 4.0, 9.0, 7.0};
    case ObservedRat::kG2: return {20.0, 0.0, 5.0, 28.0, 25.0, 0.0, 0.0, 11.0, 11.0};
  }
  return {};
}

const char* const kTailTemplates[] = {
    "RRC reconfiguration timer expiry in target cell",
    "X2/S1 transport bearer setup rejected",
    "GTP-C message with malformed relocation TEID",
    "Admission control veto on guaranteed-bitrate bearer",
    "Target cell barred during maintenance window",
    "Security context transfer integrity check failed",
    "UE capability mismatch discovered during preparation",
    "RIM association missing for target routing area",
    "Paging overload protection throttled relocation",
    "Licensed capacity ceiling reached on target carrier",
};

}  // namespace

CauseCatalog::CauseCatalog(std::uint64_t seed, std::size_t tail_causes) {
  if (tail_causes < 10) throw std::invalid_argument{"CauseCatalog: tail too small"};
  util::Rng rng = util::Rng::derive(seed, 0x7a11u);
  tail_descriptions_.reserve(tail_causes);
  for (std::size_t i = 0; i < tail_causes; ++i) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "Vendor V%u sub-cause 0x%03zX: %s (variant %zu)",
                  static_cast<unsigned>(1 + rng.below(4)), 0x100 + i,
                  kTailTemplates[i % std::size(kTailTemplates)],
                  i / std::size(kTailTemplates));
    tail_descriptions_.emplace_back(buf);
  }
  // Zipf(1.2) mass over the tail: a handful of vendor sub-causes recur while
  // most appear a few times over four weeks, as in the measured catalog.
  tail_cdf_.resize(tail_causes);
  double total = 0.0;
  for (std::size_t i = 0; i < tail_causes; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), 1.2);
    tail_cdf_[i] = total;
  }
  for (auto& v : tail_cdf_) v /= total;
  tail_cdf_.back() = 1.0;
}

std::array<double, 9> CauseCatalog::weights(const CauseContext& context) const {
  std::array<double, 9> w = base_weights(context.target);

  // SRVCC-specific causes only exist on the SRVCC path; an unsubscribed UE
  // attempting SRVCC overwhelmingly fails with Cause #6.
  if (!context.srvcc_attempt) {
    w[5] = 0.0;  // #6
    w[6] = 0.0;  // #7
  } else {
    w[6] *= 10.0;
    if (!context.srvcc_subscribed) {
      w[5] = 400.0;
    } else {
      w[5] = 0.0;
    }
  }

  // Area effects (Fig. 15a): cancellations and both SRVCC causes skew rural;
  // target overload is an urban, dense-deployment phenomenon.
  if (context.area == AreaType::kRural) {
    w[0] *= 1.5;
    w[5] *= 1.8;
    w[6] *= 2.0;
    w[3] *= 0.45;
  } else {
    w[3] *= 1.7;
  }

  // Device effects (Fig. 15b): M2M/IoT profiles hit configuration errors
  // (#3) and relocation timeouts (#8, x3) but essentially never SRVCC.
  switch (context.device) {
    case DeviceType::kM2mIot:
      w[2] *= 2.5;
      w[7] *= 3.0;
      w[5] *= 0.05;
      w[6] *= 0.02;
      break;
    case DeviceType::kFeaturePhone:
      w[5] *= 3.0;
      break;
    case DeviceType::kSmartphone:
      break;
  }

  // Peak-hour load concentration (#4), plus direct overload modulation.
  const bool peak = (context.hour >= 7 && context.hour < 9) ||
                    (context.hour >= 15 && context.hour < 18);
  w[3] *= (peak ? 1.6 : 1.0) * (1.0 + 8.0 * context.overload);
  return w;
}

CauseId CauseCatalog::sample(const CauseContext& context, util::Rng& rng) const {
  const std::array<double, 9> w = weights(context);
  double total = 0.0;
  for (const double v : w) total += v;
  if (total <= 0.0) return kCause5MmeDetectedFailure;  // degenerate context
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < 8; ++i) {
    u -= w[i];
    if (u <= 0.0) return static_cast<CauseId>(i + 1);
  }
  // Long tail: pick a vendor sub-cause by its Zipf mass.
  const double t = rng.uniform();
  const auto it = std::lower_bound(tail_cdf_.begin(), tail_cdf_.end(), t);
  return static_cast<CauseId>(kFirstTailCause + (it - tail_cdf_.begin()));
}

std::string_view CauseCatalog::description(CauseId cause) const {
  if (cause == kCauseNone) return "Success";
  if (is_dominant_cause(cause)) return kDominantDescriptions[cause - 1];
  const std::size_t idx = cause - kFirstTailCause;
  if (idx < tail_descriptions_.size()) return tail_descriptions_[idx];
  throw std::out_of_range{"CauseCatalog::description: unknown cause"};
}

}  // namespace tl::corenet
