file(REMOVE_RECURSE
  "libtl_analysis.a"
)
