# Empty compiler generated dependencies file for tl_analysis.
# This may be replaced when dependencies are built.
