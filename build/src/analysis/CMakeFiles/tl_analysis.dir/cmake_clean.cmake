file(REMOVE_RECURSE
  "CMakeFiles/tl_analysis.dir/anova.cpp.o"
  "CMakeFiles/tl_analysis.dir/anova.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/correlation.cpp.o"
  "CMakeFiles/tl_analysis.dir/correlation.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/ecdf.cpp.o"
  "CMakeFiles/tl_analysis.dir/ecdf.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/histogram.cpp.o"
  "CMakeFiles/tl_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/linear_model.cpp.o"
  "CMakeFiles/tl_analysis.dir/linear_model.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/matrix.cpp.o"
  "CMakeFiles/tl_analysis.dir/matrix.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/special_functions.cpp.o"
  "CMakeFiles/tl_analysis.dir/special_functions.cpp.o.d"
  "CMakeFiles/tl_analysis.dir/summary.cpp.o"
  "CMakeFiles/tl_analysis.dir/summary.cpp.o.d"
  "libtl_analysis.a"
  "libtl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
