
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anova.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/anova.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/anova.cpp.o.d"
  "/root/repo/src/analysis/correlation.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/correlation.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/correlation.cpp.o.d"
  "/root/repo/src/analysis/ecdf.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/ecdf.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/ecdf.cpp.o.d"
  "/root/repo/src/analysis/histogram.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/histogram.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/histogram.cpp.o.d"
  "/root/repo/src/analysis/linear_model.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/linear_model.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/linear_model.cpp.o.d"
  "/root/repo/src/analysis/matrix.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/matrix.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/matrix.cpp.o.d"
  "/root/repo/src/analysis/special_functions.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/special_functions.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/special_functions.cpp.o.d"
  "/root/repo/src/analysis/summary.cpp" "src/analysis/CMakeFiles/tl_analysis.dir/summary.cpp.o" "gcc" "src/analysis/CMakeFiles/tl_analysis.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
