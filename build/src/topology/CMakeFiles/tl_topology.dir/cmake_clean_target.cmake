file(REMOVE_RECURSE
  "libtl_topology.a"
)
