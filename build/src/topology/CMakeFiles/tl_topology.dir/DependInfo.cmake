
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/deployment.cpp" "src/topology/CMakeFiles/tl_topology.dir/deployment.cpp.o" "gcc" "src/topology/CMakeFiles/tl_topology.dir/deployment.cpp.o.d"
  "/root/repo/src/topology/energy_saving.cpp" "src/topology/CMakeFiles/tl_topology.dir/energy_saving.cpp.o" "gcc" "src/topology/CMakeFiles/tl_topology.dir/energy_saving.cpp.o.d"
  "/root/repo/src/topology/neighbor_map.cpp" "src/topology/CMakeFiles/tl_topology.dir/neighbor_map.cpp.o" "gcc" "src/topology/CMakeFiles/tl_topology.dir/neighbor_map.cpp.o.d"
  "/root/repo/src/topology/snapshot.cpp" "src/topology/CMakeFiles/tl_topology.dir/snapshot.cpp.o" "gcc" "src/topology/CMakeFiles/tl_topology.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
