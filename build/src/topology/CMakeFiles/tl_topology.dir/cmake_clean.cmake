file(REMOVE_RECURSE
  "CMakeFiles/tl_topology.dir/deployment.cpp.o"
  "CMakeFiles/tl_topology.dir/deployment.cpp.o.d"
  "CMakeFiles/tl_topology.dir/energy_saving.cpp.o"
  "CMakeFiles/tl_topology.dir/energy_saving.cpp.o.d"
  "CMakeFiles/tl_topology.dir/neighbor_map.cpp.o"
  "CMakeFiles/tl_topology.dir/neighbor_map.cpp.o.d"
  "CMakeFiles/tl_topology.dir/snapshot.cpp.o"
  "CMakeFiles/tl_topology.dir/snapshot.cpp.o.d"
  "libtl_topology.a"
  "libtl_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
