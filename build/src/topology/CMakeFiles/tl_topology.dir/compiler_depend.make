# Empty compiler generated dependencies file for tl_topology.
# This may be replaced when dependencies are built.
