
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/aggregates.cpp" "src/telemetry/CMakeFiles/tl_telemetry.dir/aggregates.cpp.o" "gcc" "src/telemetry/CMakeFiles/tl_telemetry.dir/aggregates.cpp.o.d"
  "/root/repo/src/telemetry/control_events.cpp" "src/telemetry/CMakeFiles/tl_telemetry.dir/control_events.cpp.o" "gcc" "src/telemetry/CMakeFiles/tl_telemetry.dir/control_events.cpp.o.d"
  "/root/repo/src/telemetry/pingpong.cpp" "src/telemetry/CMakeFiles/tl_telemetry.dir/pingpong.cpp.o" "gcc" "src/telemetry/CMakeFiles/tl_telemetry.dir/pingpong.cpp.o.d"
  "/root/repo/src/telemetry/sampling.cpp" "src/telemetry/CMakeFiles/tl_telemetry.dir/sampling.cpp.o" "gcc" "src/telemetry/CMakeFiles/tl_telemetry.dir/sampling.cpp.o.d"
  "/root/repo/src/telemetry/signaling_dataset.cpp" "src/telemetry/CMakeFiles/tl_telemetry.dir/signaling_dataset.cpp.o" "gcc" "src/telemetry/CMakeFiles/tl_telemetry.dir/signaling_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tl_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/core_network/CMakeFiles/tl_corenet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
