file(REMOVE_RECURSE
  "CMakeFiles/tl_telemetry.dir/aggregates.cpp.o"
  "CMakeFiles/tl_telemetry.dir/aggregates.cpp.o.d"
  "CMakeFiles/tl_telemetry.dir/control_events.cpp.o"
  "CMakeFiles/tl_telemetry.dir/control_events.cpp.o.d"
  "CMakeFiles/tl_telemetry.dir/pingpong.cpp.o"
  "CMakeFiles/tl_telemetry.dir/pingpong.cpp.o.d"
  "CMakeFiles/tl_telemetry.dir/sampling.cpp.o"
  "CMakeFiles/tl_telemetry.dir/sampling.cpp.o.d"
  "CMakeFiles/tl_telemetry.dir/signaling_dataset.cpp.o"
  "CMakeFiles/tl_telemetry.dir/signaling_dataset.cpp.o.d"
  "libtl_telemetry.a"
  "libtl_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
