file(REMOVE_RECURSE
  "libtl_telemetry.a"
)
