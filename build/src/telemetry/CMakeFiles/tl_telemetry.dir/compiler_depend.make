# Empty compiler generated dependencies file for tl_telemetry.
# This may be replaced when dependencies are built.
