# Empty dependencies file for tl_ran.
# This may be replaced when dependencies are built.
