
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/coverage.cpp" "src/ran/CMakeFiles/tl_ran.dir/coverage.cpp.o" "gcc" "src/ran/CMakeFiles/tl_ran.dir/coverage.cpp.o.d"
  "/root/repo/src/ran/load.cpp" "src/ran/CMakeFiles/tl_ran.dir/load.cpp.o" "gcc" "src/ran/CMakeFiles/tl_ran.dir/load.cpp.o.d"
  "/root/repo/src/ran/measurement.cpp" "src/ran/CMakeFiles/tl_ran.dir/measurement.cpp.o" "gcc" "src/ran/CMakeFiles/tl_ran.dir/measurement.cpp.o.d"
  "/root/repo/src/ran/propagation.cpp" "src/ran/CMakeFiles/tl_ran.dir/propagation.cpp.o" "gcc" "src/ran/CMakeFiles/tl_ran.dir/propagation.cpp.o.d"
  "/root/repo/src/ran/target_selection.cpp" "src/ran/CMakeFiles/tl_ran.dir/target_selection.cpp.o" "gcc" "src/ran/CMakeFiles/tl_ran.dir/target_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tl_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/tl_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
