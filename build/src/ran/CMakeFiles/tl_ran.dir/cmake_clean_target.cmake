file(REMOVE_RECURSE
  "libtl_ran.a"
)
