file(REMOVE_RECURSE
  "CMakeFiles/tl_ran.dir/coverage.cpp.o"
  "CMakeFiles/tl_ran.dir/coverage.cpp.o.d"
  "CMakeFiles/tl_ran.dir/load.cpp.o"
  "CMakeFiles/tl_ran.dir/load.cpp.o.d"
  "CMakeFiles/tl_ran.dir/measurement.cpp.o"
  "CMakeFiles/tl_ran.dir/measurement.cpp.o.d"
  "CMakeFiles/tl_ran.dir/propagation.cpp.o"
  "CMakeFiles/tl_ran.dir/propagation.cpp.o.d"
  "CMakeFiles/tl_ran.dir/target_selection.cpp.o"
  "CMakeFiles/tl_ran.dir/target_selection.cpp.o.d"
  "libtl_ran.a"
  "libtl_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
