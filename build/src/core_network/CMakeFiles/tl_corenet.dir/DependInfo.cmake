
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core_network/duration_model.cpp" "src/core_network/CMakeFiles/tl_corenet.dir/duration_model.cpp.o" "gcc" "src/core_network/CMakeFiles/tl_corenet.dir/duration_model.cpp.o.d"
  "/root/repo/src/core_network/entities.cpp" "src/core_network/CMakeFiles/tl_corenet.dir/entities.cpp.o" "gcc" "src/core_network/CMakeFiles/tl_corenet.dir/entities.cpp.o.d"
  "/root/repo/src/core_network/failure_causes.cpp" "src/core_network/CMakeFiles/tl_corenet.dir/failure_causes.cpp.o" "gcc" "src/core_network/CMakeFiles/tl_corenet.dir/failure_causes.cpp.o.d"
  "/root/repo/src/core_network/failure_model.cpp" "src/core_network/CMakeFiles/tl_corenet.dir/failure_model.cpp.o" "gcc" "src/core_network/CMakeFiles/tl_corenet.dir/failure_model.cpp.o.d"
  "/root/repo/src/core_network/ho_state_machine.cpp" "src/core_network/CMakeFiles/tl_corenet.dir/ho_state_machine.cpp.o" "gcc" "src/core_network/CMakeFiles/tl_corenet.dir/ho_state_machine.cpp.o.d"
  "/root/repo/src/core_network/messages.cpp" "src/core_network/CMakeFiles/tl_corenet.dir/messages.cpp.o" "gcc" "src/core_network/CMakeFiles/tl_corenet.dir/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tl_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
