# Empty compiler generated dependencies file for tl_corenet.
# This may be replaced when dependencies are built.
