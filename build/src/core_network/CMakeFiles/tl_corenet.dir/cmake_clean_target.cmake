file(REMOVE_RECURSE
  "libtl_corenet.a"
)
