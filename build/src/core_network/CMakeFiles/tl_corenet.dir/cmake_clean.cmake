file(REMOVE_RECURSE
  "CMakeFiles/tl_corenet.dir/duration_model.cpp.o"
  "CMakeFiles/tl_corenet.dir/duration_model.cpp.o.d"
  "CMakeFiles/tl_corenet.dir/entities.cpp.o"
  "CMakeFiles/tl_corenet.dir/entities.cpp.o.d"
  "CMakeFiles/tl_corenet.dir/failure_causes.cpp.o"
  "CMakeFiles/tl_corenet.dir/failure_causes.cpp.o.d"
  "CMakeFiles/tl_corenet.dir/failure_model.cpp.o"
  "CMakeFiles/tl_corenet.dir/failure_model.cpp.o.d"
  "CMakeFiles/tl_corenet.dir/ho_state_machine.cpp.o"
  "CMakeFiles/tl_corenet.dir/ho_state_machine.cpp.o.d"
  "CMakeFiles/tl_corenet.dir/messages.cpp.o"
  "CMakeFiles/tl_corenet.dir/messages.cpp.o.d"
  "libtl_corenet.a"
  "libtl_corenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_corenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
