# Empty compiler generated dependencies file for tl_devices.
# This may be replaced when dependencies are built.
