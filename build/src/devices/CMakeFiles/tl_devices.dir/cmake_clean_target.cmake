file(REMOVE_RECURSE
  "libtl_devices.a"
)
