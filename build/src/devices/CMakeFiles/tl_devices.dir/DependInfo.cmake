
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/apn.cpp" "src/devices/CMakeFiles/tl_devices.dir/apn.cpp.o" "gcc" "src/devices/CMakeFiles/tl_devices.dir/apn.cpp.o.d"
  "/root/repo/src/devices/catalog.cpp" "src/devices/CMakeFiles/tl_devices.dir/catalog.cpp.o" "gcc" "src/devices/CMakeFiles/tl_devices.dir/catalog.cpp.o.d"
  "/root/repo/src/devices/classifier.cpp" "src/devices/CMakeFiles/tl_devices.dir/classifier.cpp.o" "gcc" "src/devices/CMakeFiles/tl_devices.dir/classifier.cpp.o.d"
  "/root/repo/src/devices/population.cpp" "src/devices/CMakeFiles/tl_devices.dir/population.cpp.o" "gcc" "src/devices/CMakeFiles/tl_devices.dir/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
