file(REMOVE_RECURSE
  "CMakeFiles/tl_devices.dir/apn.cpp.o"
  "CMakeFiles/tl_devices.dir/apn.cpp.o.d"
  "CMakeFiles/tl_devices.dir/catalog.cpp.o"
  "CMakeFiles/tl_devices.dir/catalog.cpp.o.d"
  "CMakeFiles/tl_devices.dir/classifier.cpp.o"
  "CMakeFiles/tl_devices.dir/classifier.cpp.o.d"
  "CMakeFiles/tl_devices.dir/population.cpp.o"
  "CMakeFiles/tl_devices.dir/population.cpp.o.d"
  "libtl_devices.a"
  "libtl_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
