file(REMOVE_RECURSE
  "libtl_mobility.a"
)
