# Empty dependencies file for tl_mobility.
# This may be replaced when dependencies are built.
