file(REMOVE_RECURSE
  "CMakeFiles/tl_mobility.dir/activity.cpp.o"
  "CMakeFiles/tl_mobility.dir/activity.cpp.o.d"
  "CMakeFiles/tl_mobility.dir/metrics.cpp.o"
  "CMakeFiles/tl_mobility.dir/metrics.cpp.o.d"
  "CMakeFiles/tl_mobility.dir/mobility_class.cpp.o"
  "CMakeFiles/tl_mobility.dir/mobility_class.cpp.o.d"
  "CMakeFiles/tl_mobility.dir/trace_generator.cpp.o"
  "CMakeFiles/tl_mobility.dir/trace_generator.cpp.o.d"
  "libtl_mobility.a"
  "libtl_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
