
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/activity.cpp" "src/mobility/CMakeFiles/tl_mobility.dir/activity.cpp.o" "gcc" "src/mobility/CMakeFiles/tl_mobility.dir/activity.cpp.o.d"
  "/root/repo/src/mobility/metrics.cpp" "src/mobility/CMakeFiles/tl_mobility.dir/metrics.cpp.o" "gcc" "src/mobility/CMakeFiles/tl_mobility.dir/metrics.cpp.o.d"
  "/root/repo/src/mobility/mobility_class.cpp" "src/mobility/CMakeFiles/tl_mobility.dir/mobility_class.cpp.o" "gcc" "src/mobility/CMakeFiles/tl_mobility.dir/mobility_class.cpp.o.d"
  "/root/repo/src/mobility/trace_generator.cpp" "src/mobility/CMakeFiles/tl_mobility.dir/trace_generator.cpp.o" "gcc" "src/mobility/CMakeFiles/tl_mobility.dir/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tl_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
