# Empty dependencies file for tl_util.
# This may be replaced when dependencies are built.
