file(REMOVE_RECURSE
  "CMakeFiles/tl_util.dir/accumulator.cpp.o"
  "CMakeFiles/tl_util.dir/accumulator.cpp.o.d"
  "CMakeFiles/tl_util.dir/csv.cpp.o"
  "CMakeFiles/tl_util.dir/csv.cpp.o.d"
  "CMakeFiles/tl_util.dir/distributions.cpp.o"
  "CMakeFiles/tl_util.dir/distributions.cpp.o.d"
  "CMakeFiles/tl_util.dir/hash.cpp.o"
  "CMakeFiles/tl_util.dir/hash.cpp.o.d"
  "CMakeFiles/tl_util.dir/rng.cpp.o"
  "CMakeFiles/tl_util.dir/rng.cpp.o.d"
  "CMakeFiles/tl_util.dir/sim_time.cpp.o"
  "CMakeFiles/tl_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/tl_util.dir/table.cpp.o"
  "CMakeFiles/tl_util.dir/table.cpp.o.d"
  "libtl_util.a"
  "libtl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
