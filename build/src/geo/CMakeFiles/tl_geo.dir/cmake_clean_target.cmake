file(REMOVE_RECURSE
  "libtl_geo.a"
)
