file(REMOVE_RECURSE
  "CMakeFiles/tl_geo.dir/census.cpp.o"
  "CMakeFiles/tl_geo.dir/census.cpp.o.d"
  "CMakeFiles/tl_geo.dir/country.cpp.o"
  "CMakeFiles/tl_geo.dir/country.cpp.o.d"
  "CMakeFiles/tl_geo.dir/spatial_index.cpp.o"
  "CMakeFiles/tl_geo.dir/spatial_index.cpp.o.d"
  "libtl_geo.a"
  "libtl_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
