# Empty compiler generated dependencies file for tl_geo.
# This may be replaced when dependencies are built.
