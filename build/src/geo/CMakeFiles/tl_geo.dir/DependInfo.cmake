
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/census.cpp" "src/geo/CMakeFiles/tl_geo.dir/census.cpp.o" "gcc" "src/geo/CMakeFiles/tl_geo.dir/census.cpp.o.d"
  "/root/repo/src/geo/country.cpp" "src/geo/CMakeFiles/tl_geo.dir/country.cpp.o" "gcc" "src/geo/CMakeFiles/tl_geo.dir/country.cpp.o.d"
  "/root/repo/src/geo/spatial_index.cpp" "src/geo/CMakeFiles/tl_geo.dir/spatial_index.cpp.o" "gcc" "src/geo/CMakeFiles/tl_geo.dir/spatial_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
