
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/tl_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/config.cpp.o.d"
  "/root/repo/src/core/control_plane.cpp" "src/core/CMakeFiles/tl_core.dir/control_plane.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/control_plane.cpp.o.d"
  "/root/repo/src/core/hof_dataset.cpp" "src/core/CMakeFiles/tl_core.dir/hof_dataset.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/hof_dataset.cpp.o.d"
  "/root/repo/src/core/home_inference.cpp" "src/core/CMakeFiles/tl_core.dir/home_inference.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/home_inference.cpp.o.d"
  "/root/repo/src/core/qos_model.cpp" "src/core/CMakeFiles/tl_core.dir/qos_model.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/qos_model.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/tl_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/report.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/tl_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/usage_model.cpp" "src/core/CMakeFiles/tl_core.dir/usage_model.cpp.o" "gcc" "src/core/CMakeFiles/tl_core.dir/usage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tl_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/tl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/tl_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/core_network/CMakeFiles/tl_corenet.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/tl_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
