file(REMOVE_RECURSE
  "CMakeFiles/tl_core.dir/config.cpp.o"
  "CMakeFiles/tl_core.dir/config.cpp.o.d"
  "CMakeFiles/tl_core.dir/control_plane.cpp.o"
  "CMakeFiles/tl_core.dir/control_plane.cpp.o.d"
  "CMakeFiles/tl_core.dir/hof_dataset.cpp.o"
  "CMakeFiles/tl_core.dir/hof_dataset.cpp.o.d"
  "CMakeFiles/tl_core.dir/home_inference.cpp.o"
  "CMakeFiles/tl_core.dir/home_inference.cpp.o.d"
  "CMakeFiles/tl_core.dir/qos_model.cpp.o"
  "CMakeFiles/tl_core.dir/qos_model.cpp.o.d"
  "CMakeFiles/tl_core.dir/report.cpp.o"
  "CMakeFiles/tl_core.dir/report.cpp.o.d"
  "CMakeFiles/tl_core.dir/simulator.cpp.o"
  "CMakeFiles/tl_core.dir/simulator.cpp.o.d"
  "CMakeFiles/tl_core.dir/usage_model.cpp.o"
  "CMakeFiles/tl_core.dir/usage_model.cpp.o.d"
  "libtl_core.a"
  "libtl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
