file(REMOVE_RECURSE
  "CMakeFiles/manufacturer_audit.dir/manufacturer_audit.cpp.o"
  "CMakeFiles/manufacturer_audit.dir/manufacturer_audit.cpp.o.d"
  "manufacturer_audit"
  "manufacturer_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacturer_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
