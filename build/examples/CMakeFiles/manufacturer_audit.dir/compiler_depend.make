# Empty compiler generated dependencies file for manufacturer_audit.
# This may be replaced when dependencies are built.
