# Empty dependencies file for ho_trace_inspector.
# This may be replaced when dependencies are built.
