file(REMOVE_RECURSE
  "CMakeFiles/ho_trace_inspector.dir/ho_trace_inspector.cpp.o"
  "CMakeFiles/ho_trace_inspector.dir/ho_trace_inspector.cpp.o.d"
  "ho_trace_inspector"
  "ho_trace_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ho_trace_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
