# Empty dependencies file for network_ops_report.
# This may be replaced when dependencies are built.
