file(REMOVE_RECURSE
  "CMakeFiles/network_ops_report.dir/network_ops_report.cpp.o"
  "CMakeFiles/network_ops_report.dir/network_ops_report.cpp.o.d"
  "network_ops_report"
  "network_ops_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_ops_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
