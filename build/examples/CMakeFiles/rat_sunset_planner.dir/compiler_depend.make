# Empty compiler generated dependencies file for rat_sunset_planner.
# This may be replaced when dependencies are built.
