file(REMOVE_RECURSE
  "CMakeFiles/rat_sunset_planner.dir/rat_sunset_planner.cpp.o"
  "CMakeFiles/rat_sunset_planner.dir/rat_sunset_planner.cpp.o.d"
  "rat_sunset_planner"
  "rat_sunset_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rat_sunset_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
