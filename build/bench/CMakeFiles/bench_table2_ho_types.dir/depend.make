# Empty dependencies file for bench_table2_ho_types.
# This may be replaced when dependencies are built.
