file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_quantile.dir/bench_table8_quantile.cpp.o"
  "CMakeFiles/bench_table8_quantile.dir/bench_table8_quantile.cpp.o.d"
  "bench_table8_quantile"
  "bench_table8_quantile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
