file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_causes.dir/bench_fig14_causes.cpp.o"
  "CMakeFiles/bench_fig14_causes.dir/bench_fig14_causes.cpp.o.d"
  "bench_fig14_causes"
  "bench_fig14_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
