# Empty dependencies file for bench_fig4_devices.
# This may be replaced when dependencies are built.
