file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_devices.dir/bench_fig4_devices.cpp.o"
  "CMakeFiles/bench_fig4_devices.dir/bench_fig4_devices.cpp.o.d"
  "bench_fig4_devices"
  "bench_fig4_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
