# Empty dependencies file for bench_fig3_deployment.
# This may be replaced when dependencies are built.
