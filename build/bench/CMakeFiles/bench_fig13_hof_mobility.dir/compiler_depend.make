# Empty compiler generated dependencies file for bench_fig13_hof_mobility.
# This may be replaced when dependencies are built.
