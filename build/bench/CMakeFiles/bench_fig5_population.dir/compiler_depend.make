# Empty compiler generated dependencies file for bench_fig5_population.
# This may be replaced when dependencies are built.
