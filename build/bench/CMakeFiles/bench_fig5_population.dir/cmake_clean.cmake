file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_population.dir/bench_fig5_population.cpp.o"
  "CMakeFiles/bench_fig5_population.dir/bench_fig5_population.cpp.o.d"
  "bench_fig5_population"
  "bench_fig5_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
