file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_regression.dir/bench_table4_regression.cpp.o"
  "CMakeFiles/bench_table4_regression.dir/bench_table4_regression.cpp.o.d"
  "bench_table4_regression"
  "bench_table4_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
