# Empty compiler generated dependencies file for bench_fig16_18_appendix.
# This may be replaced when dependencies are built.
