# Empty dependencies file for bench_fig15_cause_breakdown.
# This may be replaced when dependencies are built.
