file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_manufacturers.dir/bench_fig11_manufacturers.cpp.o"
  "CMakeFiles/bench_fig11_manufacturers.dir/bench_fig11_manufacturers.cpp.o.d"
  "bench_fig11_manufacturers"
  "bench_fig11_manufacturers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_manufacturers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
