# Empty dependencies file for bench_fig12_hof_hourly.
# This may be replaced when dependencies are built.
