file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_district_rats.dir/bench_fig9_district_rats.cpp.o"
  "CMakeFiles/bench_fig9_district_rats.dir/bench_fig9_district_rats.cpp.o.d"
  "bench_fig9_district_rats"
  "bench_fig9_district_rats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_district_rats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
