# Empty dependencies file for bench_fig9_district_rats.
# This may be replaced when dependencies are built.
