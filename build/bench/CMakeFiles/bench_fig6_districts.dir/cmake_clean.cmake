file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_districts.dir/bench_fig6_districts.cpp.o"
  "CMakeFiles/bench_fig6_districts.dir/bench_fig6_districts.cpp.o.d"
  "bench_fig6_districts"
  "bench_fig6_districts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_districts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
