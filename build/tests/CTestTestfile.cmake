# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_distributions[1]_include.cmake")
include("/root/repo/build/tests/test_util_misc[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_special[1]_include.cmake")
include("/root/repo/build/tests/test_summary_ecdf[1]_include.cmake")
include("/root/repo/build/tests/test_anova_models[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_ran[1]_include.cmake")
include("/root/repo/build/tests/test_corenet[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_crossvalidation[1]_include.cmake")
include("/root/repo/build/tests/test_ho_properties[1]_include.cmake")
