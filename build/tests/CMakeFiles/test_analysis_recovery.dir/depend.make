# Empty dependencies file for test_analysis_recovery.
# This may be replaced when dependencies are built.
