file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_recovery.dir/test_analysis_recovery.cpp.o"
  "CMakeFiles/test_analysis_recovery.dir/test_analysis_recovery.cpp.o.d"
  "test_analysis_recovery"
  "test_analysis_recovery.pdb"
  "test_analysis_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
