file(REMOVE_RECURSE
  "CMakeFiles/test_ho_properties.dir/test_ho_properties.cpp.o"
  "CMakeFiles/test_ho_properties.dir/test_ho_properties.cpp.o.d"
  "test_ho_properties"
  "test_ho_properties.pdb"
  "test_ho_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ho_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
