# Empty compiler generated dependencies file for test_ho_properties.
# This may be replaced when dependencies are built.
