
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/test_util_misc.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/test_util_misc.dir/test_util_misc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/tl_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/tl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/tl_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/core_network/CMakeFiles/tl_corenet.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tl_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
