# Empty compiler generated dependencies file for test_summary_ecdf.
# This may be replaced when dependencies are built.
