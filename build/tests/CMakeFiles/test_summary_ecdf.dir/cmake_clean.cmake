file(REMOVE_RECURSE
  "CMakeFiles/test_summary_ecdf.dir/test_summary_ecdf.cpp.o"
  "CMakeFiles/test_summary_ecdf.dir/test_summary_ecdf.cpp.o.d"
  "test_summary_ecdf"
  "test_summary_ecdf.pdb"
  "test_summary_ecdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
