# Empty dependencies file for test_anova_models.
# This may be replaced when dependencies are built.
