file(REMOVE_RECURSE
  "CMakeFiles/test_anova_models.dir/test_anova_models.cpp.o"
  "CMakeFiles/test_anova_models.dir/test_anova_models.cpp.o.d"
  "test_anova_models"
  "test_anova_models.pdb"
  "test_anova_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anova_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
