file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_special.dir/test_matrix_special.cpp.o"
  "CMakeFiles/test_matrix_special.dir/test_matrix_special.cpp.o.d"
  "test_matrix_special"
  "test_matrix_special.pdb"
  "test_matrix_special[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_special.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
