file(REMOVE_RECURSE
  "CMakeFiles/test_corenet.dir/test_corenet.cpp.o"
  "CMakeFiles/test_corenet.dir/test_corenet.cpp.o.d"
  "test_corenet"
  "test_corenet.pdb"
  "test_corenet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
