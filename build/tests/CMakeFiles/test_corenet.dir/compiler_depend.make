# Empty compiler generated dependencies file for test_corenet.
# This may be replaced when dependencies are built.
