// Appendix B — Fig. 16 (ECDFs of HOF rate per HO type at three filter
// levels), Fig. 17 (vendor per region / per HO type), Fig. 18 (HOF rate
// boxplots vs vendor and vs area), plus the appendix ANOVA robustness runs.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "analysis/anova.hpp"
#include "analysis/ecdf.hpp"
#include "bench_world.hpp"
#include "core/hof_dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

const core::HofModelingDataset& dataset() {
  static const core::HofModelingDataset ds = [] {
    const auto& w = bench::modeling_world();
    return core::HofModelingDataset::build(*w.sector_day, w.sim->deployment(),
                                           w.sim->country());
  }();
  return ds;
}

void print_fig16(const core::HofModelingDataset& ds, const char* title) {
  std::array<std::vector<double>, 3> by_type;
  for (const auto& row : ds.rows()) {
    by_type[static_cast<std::size_t>(row.target)].push_back(row.hof_rate_pct);
  }
  util::print_section(std::cout, title);
  util::TextTable t{{"F", "Intra 4G/5G-NSA", "to 3G", "to 2G"}};
  for (const double p : {0.25, 0.5, 0.75, 0.9, 0.95}) {
    std::vector<std::string> row{util::TextTable::num(p, 2)};
    for (const int rat : {2, 1, 0}) {
      if (by_type[rat].empty()) {
        row.push_back("-");
        continue;
      }
      row.push_back(util::TextTable::num(analysis::quantile(by_type[rat], p), 3) + "%");
    }
    t.add_row(row);
  }
  t.print(std::cout);
}

void print_fig17() {
  const auto& w = bench::modeling_world();
  util::print_section(std::cout, "Fig. 17 (top): vendor share per region");
  std::map<geo::Region, std::array<std::uint64_t, 4>> per_region;
  for (const auto& site : w.sim->deployment().sites()) {
    ++per_region[site.region][static_cast<std::size_t>(site.vendor)];
  }
  util::TextTable t{{"Region", "V1", "V2", "V3", "V4"}};
  for (const auto region : geo::kAllRegions) {
    const auto& counts = per_region[region];
    const double total = static_cast<double>(counts[0] + counts[1] + counts[2] + counts[3]);
    t.add_row({std::string{geo::to_string(region)},
               util::TextTable::pct(counts[0] / total, 1),
               util::TextTable::pct(counts[1] / total, 1),
               util::TextTable::pct(counts[2] / total, 1),
               util::TextTable::pct(counts[3] / total, 1)});
  }
  t.print(std::cout);

  util::print_section(std::cout, "Fig. 17 (bottom): vendor share per HO type");
  std::array<std::array<std::uint64_t, 4>, 3> per_type{};
  for (const auto& row : dataset().rows()) {
    per_type[static_cast<std::size_t>(row.target)]
            [static_cast<std::size_t>(row.vendor)] += row.daily_hos;
  }
  util::TextTable t2{{"HO type", "V1", "V2", "V3", "V4"}};
  const char* names[3] = {"to 2G", "to 3G", "Intra 4G/5G-NSA"};
  for (const int rat : {2, 1, 0}) {
    const auto& counts = per_type[rat];
    const double total =
        static_cast<double>(counts[0] + counts[1] + counts[2] + counts[3]);
    if (total == 0) continue;
    t2.add_row({names[rat], util::TextTable::pct(counts[0] / total, 1),
                util::TextTable::pct(counts[1] / total, 1),
                util::TextTable::pct(counts[2] / total, 1),
                util::TextTable::pct(counts[3] / total, 1)});
  }
  t2.print(std::cout);
}

void print_fig18_and_anova() {
  util::print_section(std::cout,
                      "Fig. 18 (top): HOF-rate boxplots per vendor (non-zero rows)");
  std::array<std::vector<double>, 4> by_vendor;
  std::array<std::vector<double>, 2> by_area;
  for (const auto& row : dataset().rows()) {
    if (row.hof_rate_pct <= 0.0) continue;
    by_vendor[static_cast<std::size_t>(row.vendor)].push_back(row.hof_rate_pct);
    if (row.area == core::AreaClass::kRural) by_area[0].push_back(row.hof_rate_pct);
    if (row.area == core::AreaClass::kUrban) by_area[1].push_back(row.hof_rate_pct);
  }
  util::TextTable t{{"Vendor", "q1", "median", "q3", "mean", "n"}};
  for (std::size_t v = 0; v < 4; ++v) {
    if (by_vendor[v].empty()) continue;
    const auto box = analysis::boxplot(by_vendor[v]);
    t.add_row({"V" + std::to_string(v + 1), util::TextTable::num(box.q1, 3),
               util::TextTable::num(box.median, 3), util::TextTable::num(box.q3, 3),
               util::TextTable::num(box.mean, 3), std::to_string(box.n)});
  }
  t.print(std::cout);

  util::print_section(std::cout, "Fig. 18 (bottom): HOF-rate boxplots per area type");
  util::TextTable t2{{"Area", "q1", "median", "q3", "mean", "n"}};
  const char* areas[2] = {"Rural", "Urban"};
  for (std::size_t a = 0; a < 2; ++a) {
    if (by_area[a].empty()) continue;
    const auto box = analysis::boxplot(by_area[a]);
    t2.add_row({areas[a], util::TextTable::num(box.q1, 3),
                util::TextTable::num(box.median, 3), util::TextTable::num(box.q3, 3),
                util::TextTable::num(box.mean, 3), std::to_string(box.n)});
  }
  t2.print(std::cout);

  // Appendix ANOVA robustness: vendor and area effects — significant but
  // much smaller than the HO-type effect.
  std::vector<std::vector<double>> vendor_groups, area_groups;
  for (auto& g : by_vendor) {
    if (g.size() > 3) {
      for (auto& v : g) v = std::log(v);
      vendor_groups.push_back(std::move(g));
    }
  }
  for (auto& g : by_area) {
    if (g.size() > 3) {
      for (auto& v : g) v = std::log(v);
      area_groups.push_back(std::move(g));
    }
  }
  const auto vendor_anova = analysis::one_way_anova(vendor_groups);
  const auto area_anova = analysis::one_way_anova(area_groups);
  const auto type_anova = dataset().anova_by_type();
  util::print_section(std::cout, "Appendix B: ANOVA effect sizes (log HOF rate)");
  util::TextTable a{{"Factor", "F", "p", "eta^2", "paper eta^2"}};
  const auto fmt_p = [](double p) {
    return p < 1e-12 ? std::string{"~0"} : util::TextTable::num(p, 6);
  };
  a.add_row({"HO type", util::TextTable::num(type_anova.f_statistic, 0),
             fmt_p(type_anova.p_value), util::TextTable::num(type_anova.eta_squared, 3),
             "0.81"});
  a.add_row({"Antenna vendor", util::TextTable::num(vendor_anova.f_statistic, 0),
             fmt_p(vendor_anova.p_value),
             util::TextTable::num(vendor_anova.eta_squared, 3), "0.02"});
  a.add_row({"Area type", util::TextTable::num(area_anova.f_statistic, 0),
             fmt_p(area_anova.p_value), util::TextTable::num(area_anova.eta_squared, 3),
             "0.0079"});
  a.print(std::cout);
}

void BM_TukeyHsdByType(benchmark::State& state) {
  const auto groups = dataset().log_rate_groups();
  std::vector<std::vector<double>> present;
  for (const auto& g : groups) {
    if (!g.empty()) present.push_back(g);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::tukey_hsd(present).size());
  }
}
BENCHMARK(BM_TukeyHsdByType);

}  // namespace

int main(int argc, char** argv) {
  print_fig16(dataset(), "Fig. 16 (all rows): HOF-rate quantiles per HO type");
  print_fig16(dataset().nonzero(), "Fig. 16 (non-zero rows)");
  print_fig16(dataset().filtered(50.0, 10, 30'000), "Fig. 16 (outliers filtered)");
  print_fig17();
  print_fig18_and_anova();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
