// Fig. 11 — Normalized district-level HOs (left) and HOF rate (right) per
// UE manufacturer: the top-5 makers sit near 1.0 (+/-10%), Apple +4% HOs /
// +8% HOF, Google -27% HOF, while outliers reach +600% HOF (KVD, HMD) and
// +293% HOs (Simcom).

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/summary.hpp"
#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_row_group(const core::ManufacturerNormalized& result,
                     const std::vector<std::size_t>& indices, const char* title) {
  util::print_section(std::cout, title);
  util::TextTable t{{"Manufacturer", "norm. HOs median", "norm. HOs IQR",
                     "norm. HOF median", "norm. HOF IQR", "districts"}};
  for (const std::size_t idx : indices) {
    const auto& row = result.rows[idx];
    const auto ho_box = analysis::boxplot(row.normalized_hos);
    const auto hof_box = analysis::boxplot(row.normalized_hof_rate);
    t.add_row({row.name, util::TextTable::num(ho_box.median, 2),
               util::TextTable::num(ho_box.q1, 2) + ".." +
                   util::TextTable::num(ho_box.q3, 2),
               util::TextTable::num(hof_box.median, 2),
               util::TextTable::num(hof_box.q1, 2) + ".." +
                   util::TextTable::num(hof_box.q3, 2),
               std::to_string(row.normalized_hos.size())});
  }
  t.print(std::cout);
}

void print_fig11() {
  const auto& w = bench::simulated_world();
  const auto result = core::manufacturer_normalized(*w.sim, *w.districts, 3);

  print_row_group(result, result.top5_by_share,
                  "Fig. 11 (left group): top-5 smartphone manufacturers "
                  "(paper: ratios ~1.0, Apple +4% HOs / +8% HOF, Google -27% HOF)");
  print_row_group(result, result.top5_by_hof,
                  "Fig. 11 (right group): top-5 manufacturers by normalized HOF "
                  "(paper: KVD/HMD up to +600% HOF, Simcom +293% HOs)");
}

void BM_ManufacturerNormalization(benchmark::State& state) {
  const auto& w = bench::simulated_world();
  for (auto _ : state) {
    const auto result = core::manufacturer_normalized(*w.sim, *w.districts, 3);
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_ManufacturerNormalization);

}  // namespace

int main(int argc, char** argv) {
  print_fig11();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
