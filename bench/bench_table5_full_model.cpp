// Table 5 — Full linear model (all covariates) on the outlier-filtered
// dataset, and Table 7 — the same model without HOs to 2G.
//
// Paper Table 5: HO type dominates (to-2G +5.48, to-3G +4.77) with smaller
// area/vendor/region effects (Rural +0.26, V3 +0.72, West +0.40).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "core/hof_dataset.hpp"
#include "model_printing.hpp"

namespace {

using namespace tl;

const core::HofModelingDataset& dataset() {
  static const core::HofModelingDataset ds = [] {
    const auto& w = bench::modeling_world();
    return core::HofModelingDataset::build(*w.sector_day, w.sim->deployment(),
                                           w.sim->country());
  }();
  return ds;
}

void print_table5() {
  util::print_section(
      std::cout,
      "Table 5: Linear model, all covariates, outliers filtered "
      "(paper: to-2G +5.48, to-3G +4.77, Rural +0.26, Urban +0.19, V2 +0.12, "
      "V3 +0.72, West +0.40)");
  const auto filtered = dataset().filtered(50.0, 10, 30'000);
  std::cout << "rows after filter: " << filtered.size() << "\n";
  bench::print_model(std::cout, filtered.fit_full());
}

void print_table7() {
  util::print_section(std::cout,
                      "Table 7: Linear model w/o 2G HOs "
                      "(paper: to-3G +5.23, Rural +0.42, V3 +1.00, West +0.58)");
  const auto filtered = dataset().without_2g().filtered(50.0, 10, 30'000);
  std::cout << "rows after filter: " << filtered.size() << "\n";
  bench::print_model(std::cout, filtered.fit_full());
}

void print_stepwise() {
  util::print_section(std::cout,
                      "Appendix B: step-wise covariate selection (forward, by AIC)");
  const auto filtered = dataset().filtered(50.0, 10, 30'000);
  const auto result = filtered.fit_stepwise();
  std::cout << "selected order:";
  for (const auto& g : result.selected) std::cout << "  [" << g << "]";
  std::cout << "\nfinal model AIC = " << util::TextTable::num(result.model.aic, 0)
            << ", R^2 = " << util::TextTable::num(result.model.r_squared, 4) << "\n";
}

void BM_FullModelFit(benchmark::State& state) {
  const auto filtered = dataset().filtered(50.0, 10, 30'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filtered.fit_full().aic);
  }
}
BENCHMARK(BM_FullModelFit);

}  // namespace

int main(int argc, char** argv) {
  print_table5();
  print_table7();
  print_stepwise();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
