// Fig. 7 — Temporal evolution of HOs (top) and active sectors (bottom) in
// urban and rural areas, 30-minute bins, normalized by the period maximum.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "analysis/correlation.hpp"
#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

std::vector<double> normalize(const std::vector<std::uint64_t>& v) {
  const double max = static_cast<double>(*std::max_element(v.begin(), v.end()));
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = max > 0 ? static_cast<double>(v[i]) / max : 0.0;
  }
  return out;
}

void print_fig7() {
  const auto& w = bench::simulated_world();
  const auto urban = normalize(w.temporal->ho_series(geo::AreaType::kUrban));
  const auto rural = normalize(w.temporal->ho_series(geo::AreaType::kRural));
  const auto active_u = w.temporal->active_sector_series(geo::AreaType::kUrban);

  util::print_section(std::cout,
                      "Fig. 7 (top): normalized HO volume per hour (week 1)");
  util::TextTable t{{"Day", "Hour", "Urban", "Rural"}};
  const int days = std::min(w.config.days, 7);
  for (int day = 0; day < days; ++day) {
    for (int hour = 0; hour < 24; hour += 2) {
      const std::size_t bin = static_cast<std::size_t>(day) * 48 + hour * 2;
      const double u = (urban[bin] + urban[bin + 1]) / 2.0;
      const double r = (rural[bin] + rural[bin + 1]) / 2.0;
      t.add_row({util::to_short_name(util::SimCalendar::day_of_week_for_day(day)),
                 std::to_string(hour) + ":00", util::TextTable::num(u, 3),
                 util::TextTable::num(r, 3)});
    }
  }
  t.print(std::cout);

  // Headline findings the paper reports on this figure.
  util::print_section(std::cout, "Fig. 7 findings");
  const auto find_peak_bin = [&](int day) {
    std::size_t best = 0;
    for (int b = 0; b < 48; ++b) {
      const std::size_t idx = static_cast<std::size_t>(day) * 48 + b;
      if (urban[idx] > urban[static_cast<std::size_t>(day) * 48 + best]) {
        best = static_cast<std::size_t>(b);
      }
    }
    return best;
  };
  const std::size_t monday_peak = find_peak_bin(0);
  std::cout << "Weekday peak bin (paper: 08:00-08:30): "
            << monday_peak / 2 << ":" << (monday_peak % 2 ? "30" : "00") << "\n";
  if (w.config.days >= 7) {
    double friday_peak = 0, sunday_peak = 0;
    for (int b = 0; b < 48; ++b) {
      friday_peak = std::max(friday_peak, urban[4 * 48 + b]);
      sunday_peak = std::max(sunday_peak, urban[6 * 48 + b]);
    }
    std::cout << "Sunday peak vs Friday peak (paper: -33%): "
              << util::TextTable::pct(sunday_peak / friday_peak - 1.0, 1) << "\n";
  }
  const double ramp = urban[16] / std::max(urban[12], 1e-9);
  std::cout << "06:00->08:00 ramp on Monday (paper: ~x3): x"
            << util::TextTable::num(ramp, 2) << "\n";

  // Fig. 7 (bottom): active sectors, and their correlation with HO volume.
  std::vector<double> active_d(active_u.size());
  std::vector<double> ho_d(urban.size());
  for (std::size_t i = 0; i < active_u.size(); ++i) {
    active_d[i] = static_cast<double>(active_u[i]);
    ho_d[i] = urban[i];
  }
  const double corr = analysis::pearson(active_d, ho_d);
  std::cout << "Pearson(active sectors, HOs) (paper: 0.9): "
            << util::TextTable::num(corr, 3) << "\n";
  const auto max_active = *std::max_element(active_u.begin(), active_u.end());
  const std::size_t plateau_bin = 20;  // 10:00 on Monday
  std::cout << "Active-sector plateau level at 10:00 vs max (paper: ~99%): "
            << util::TextTable::pct(
                   static_cast<double>(active_u[plateau_bin]) / max_active, 1)
            << "\n";
}

void BM_TemporalAggregation(benchmark::State& state) {
  telemetry::HandoverRecord r;
  r.area = geo::AreaType::kUrban;
  r.source_sector = 5;
  for (auto _ : state) {
    telemetry::TemporalAggregator agg{1'000, 7};
    for (int i = 0; i < 100'000; ++i) {
      r.timestamp = (i * 6047) % (7 * util::kMsPerDay);
      r.source_sector = static_cast<topology::SectorId>(i % 1'000);
      agg.consume(r);
    }
    benchmark::DoNotOptimize(agg.ho_series(geo::AreaType::kUrban).size());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_TemporalAggregation);

}  // namespace

int main(int argc, char** argv) {
  print_fig7();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
