// Fig. 15 — Stacked cause shares by (a) area type, (b) device type, and
// (c) top smartphone manufacturers x area. Paper: Cause #4 drives 42% of
// urban HOFs; #5/#6 ~20% each in rural; 59% of M2M failures are #3; feature
// phones skew to #6; #8 is x3 more common on M2M.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;
using telemetry::CauseAggregator;

template <typename CountFn>
void print_stack(const char* title, const std::vector<std::string>& groups,
                 CountFn count) {
  util::print_section(std::cout, title);
  std::vector<std::string> headers{"Group"};
  for (std::size_t b = 0; b < CauseAggregator::kBuckets; ++b) {
    headers.push_back("#" + std::to_string(b + 1 <= 8 ? b + 1 : 0));
  }
  headers.back() = "tail";
  util::TextTable t{headers};
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double total = 0.0;
    for (std::size_t b = 0; b < CauseAggregator::kBuckets; ++b) {
      total += static_cast<double>(count(g, b));
    }
    std::vector<std::string> row{groups[g]};
    for (std::size_t b = 0; b < CauseAggregator::kBuckets; ++b) {
      row.push_back(total > 0.0
                        ? util::TextTable::pct(count(g, b) / total, 1)
                        : std::string{"-"});
    }
    t.add_row(row);
  }
  t.print(std::cout);
}

void print_fig15() {
  const auto& w = bench::simulated_world();
  const auto& causes = *w.causes;

  print_stack("Fig. 15a: causes by area type (paper: #4 -> 42% urban; #5/#6 ~20% rural)",
              {"Rural", "Urban"}, [&](std::size_t g, std::size_t b) {
                return static_cast<double>(causes.by_area()[g][b]);
              });

  print_stack(
      "Fig. 15b: causes by device type (paper: 59% of M2M failures are #3; feature "
      "phones skew to #6)",
      {"Smartphone", "M2M/IoT", "Feature phone"}, [&](std::size_t g, std::size_t b) {
        return static_cast<double>(causes.by_device()[g][b]);
      });

  // Fig. 15c: top smartphone manufacturers x area.
  const auto& catalog = w.sim->catalog();
  std::vector<std::string> groups;
  std::vector<std::pair<devices::ManufacturerId, geo::AreaType>> keys;
  for (const char* name : {"Apple", "Samsung", "Google", "Huawei", "Motorola"}) {
    const auto& maker = catalog.by_name(name);
    for (const auto area : {geo::AreaType::kRural, geo::AreaType::kUrban}) {
      groups.push_back(std::string{name} + "-" + std::string{geo::to_string(area)});
      keys.emplace_back(maker.id, area);
    }
  }
  print_stack("Fig. 15c: causes for top-5 smartphone manufacturers x area", groups,
              [&](std::size_t g, std::size_t b) {
                return static_cast<double>(
                    causes.by_maker_area(keys[g].first, keys[g].second, b));
              });
}

void BM_CauseAggregatorConsume(benchmark::State& state) {
  telemetry::HandoverRecord r;
  r.success = false;
  r.cause = corenet::kCause4TargetLoadTooHigh;
  for (auto _ : state) {
    telemetry::CauseAggregator agg{7, 32};
    for (int i = 0; i < 100'000; ++i) {
      r.timestamp = (i * 6047) % (7 * util::kMsPerDay);
      agg.consume(r);
    }
    benchmark::DoNotOptimize(agg.total_failures());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_CauseAggregatorConsume);

}  // namespace

int main(int argc, char** argv) {
  print_fig15();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
