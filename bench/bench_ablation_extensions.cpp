// Ablation experiments for the design choices DESIGN.md calls out, plus the
// paper's §8 extension studies:
//   A. Ping-pong suppression: what the [15]-style policy buys (PP rate,
//      wasted signaling) and costs (suppressed HOs).
//   B. Telemetry sampling: estimator error for the Table-2 vertical share
//      and the HOF rate across policies and rates — the paper's call for
//      "efficient data sampling techniques".
//   C. QoS impact: the user-plane cost of HOs/HOFs, and the share of damage
//      attributable to vertical HOs (the paper's central complaint).

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_world.hpp"
#include "core/qos_model.hpp"
#include "telemetry/pingpong.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "telemetry/sampling.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

core::StudyConfig ablation_config() {
  core::StudyConfig cfg = bench::bench_config();
  cfg.days = 2;
  cfg.population.count =
      static_cast<std::uint32_t>(bench::env_double("TL_ABLATION_UES", 12'000));
  return cfg;
}

void print_pingpong_ablation() {
  util::print_section(std::cout,
                      "Ablation A: ping-pong suppression (sub-cell movement detection)");
  util::TextTable t{{"Variant", "HOs", "PP events", "PP rate", "wasted signaling (s)"}};
  for (const bool suppress : {false, true}) {
    core::StudyConfig cfg = ablation_config();
    cfg.suppress_ping_pong = suppress;
    cfg.ping_pong_window_ms = 10'000;
    core::Simulator sim{cfg};
    telemetry::PingPongDetector detector{10'000};
    sim.add_sink(&detector);
    sim.run();
    t.add_row({suppress ? "suppression ON" : "baseline",
               std::to_string(detector.total_handovers()),
               std::to_string(detector.ping_pongs()),
               util::TextTable::pct(detector.ping_pong_rate(), 2),
               util::TextTable::num(detector.wasted_signaling_ms() / 1'000.0, 1)});
  }
  t.print(std::cout);
}

void print_sampling_ablation() {
  util::print_section(std::cout,
                      "Ablation B: telemetry sampling accuracy (Horvitz-Thompson)");

  // Ground truth from one full stream.
  core::StudyConfig cfg = ablation_config();
  core::Simulator sim{cfg};
  telemetry::SignalingDataset full;
  sim.add_sink(&full);
  sim.run();
  double true_vertical = 0, true_hof = 0;
  for (const auto& r : full.records()) {
    if (r.is_vertical()) ++true_vertical;
    if (!r.success) ++true_hof;
  }
  true_vertical /= static_cast<double>(full.size());
  true_hof /= static_cast<double>(full.size());
  std::cout << "ground truth: vertical share "
            << util::TextTable::pct(true_vertical, 2) << ", HOF rate "
            << util::TextTable::pct(true_hof, 3) << ", " << full.size()
            << " records\n";

  util::TextTable t{{"Policy", "rate", "kept", "vertical-share error",
                     "HOF-rate error"}};
  const struct {
    telemetry::SamplingPolicy policy;
    const char* name;
  } policies[] = {{telemetry::SamplingPolicy::kUniform, "uniform"},
                  {telemetry::SamplingPolicy::kPerUe, "per-UE"},
                  {telemetry::SamplingPolicy::kStratifiedByTarget, "stratified"}};
  for (const auto& p : policies) {
    for (const double rate : {0.10, 0.01}) {
      telemetry::SignalingDataset kept;
      telemetry::SamplingSink sampler{kept, p.policy, rate};
      for (const auto& r : full.records()) sampler.consume(r);
      double wv = 0, wh = 0, wt = 0;
      for (const auto& r : kept.records()) {
        const double w = sampler.weight_of(r);
        wt += w;
        if (r.is_vertical()) wv += w;
        if (!r.success) wh += w;
      }
      const double est_vertical = wt > 0 ? wv / wt : 0.0;
      const double est_hof = wt > 0 ? wh / wt : 0.0;
      t.add_row({p.name, util::TextTable::num(rate, 2), std::to_string(sampler.kept()),
                 util::TextTable::pct(std::fabs(est_vertical - true_vertical), 3),
                 util::TextTable::pct(std::fabs(est_hof - true_hof), 3)});
    }
  }
  t.print(std::cout);
  std::cout << "(stratified keeps every rare vertical HO: its tail statistics survive\n"
               " even at 1% volume, which uniform sampling cannot guarantee)\n";
}

void print_qos_ablation() {
  util::print_section(std::cout, "Ablation C: QoS impact of HOs and HOFs (§8)");
  core::StudyConfig cfg = ablation_config();
  core::Simulator sim{cfg};
  core::QosAggregator qos;
  sim.add_sink(&qos);
  sim.run();
  util::TextTable t{{"Metric", "Value"}};
  t.add_row({"records", std::to_string(qos.records())});
  t.add_row({"mean interruption, successful HO",
             util::TextTable::num(qos.mean_interruption_success_ms(), 1) + " ms"});
  t.add_row({"mean interruption, failed HO",
             util::TextTable::num(qos.mean_interruption_failure_ms(), 1) + " ms"});
  t.add_row({"total user-plane loss",
             util::TextTable::num(qos.total_lost_mbytes() / 1'024.0, 1) + " GB"});
  t.add_row({"share of loss from vertical HOs",
             util::TextTable::pct(qos.vertical_share_of_loss(), 1)});
  t.print(std::cout);
  std::cout << "(vertical HOs are ~6% of events; their outsized loss share is the\n"
               " paper's quantitative case for legacy-RAT decommissioning)\n";
}

void BM_PingPongDetection(benchmark::State& state) {
  telemetry::HandoverRecord r;
  r.success = true;
  for (auto _ : state) {
    telemetry::PingPongDetector detector{5'000};
    for (int i = 0; i < 100'000; ++i) {
      r.anon_user_id = static_cast<std::uint64_t>(i % 1'000);
      r.timestamp = i * 100;
      r.source_sector = static_cast<topology::SectorId>(i % 7);
      r.target_sector = static_cast<topology::SectorId>((i + 1) % 7);
      detector.consume(r);
    }
    benchmark::DoNotOptimize(detector.ping_pongs());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_PingPongDetection);

void BM_QosAssessment(benchmark::State& state) {
  const core::QosModel model;
  telemetry::HandoverRecord r;
  r.duration_ms = 43.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assess(r).lost_mbytes);
  }
}
BENCHMARK(BM_QosAssessment);

}  // namespace

int main(int argc, char** argv) {
  print_pingpong_ablation();
  print_sampling_ablation();
  print_qos_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
