// Table 8 — Quantile regression of log(HOF rate) on HO type, outliers
// filtered, tau in {0.2, 0.4, 0.6, 0.8}.
// Table 9 — The same over all non-zero HOF rates.
//
// Paper: the to-3G coefficient stays ~4.8-5.0 (filtered) / ~5.0-5.5 (all)
// across the whole quantile range; to-2G ~5.7-5.9 / ~6.7-7.2.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "core/hof_dataset.hpp"
#include "model_printing.hpp"

namespace {

using namespace tl;

const core::HofModelingDataset& dataset() {
  static const core::HofModelingDataset ds = [] {
    const auto& w = bench::modeling_world();
    return core::HofModelingDataset::build(*w.sector_day, w.sim->deployment(),
                                           w.sim->country());
  }();
  return ds;
}

void print_quantile_tables() {
  const auto filtered = dataset().filtered(50.0, 10, 30'000);
  util::print_section(std::cout,
                      "Table 8: Quantile regression w/o outliers "
                      "(paper: to-3G ~4.8-5.0 across taus)");
  for (const double tau : {0.2, 0.4, 0.6, 0.8}) {
    bench::print_quantile_fit(std::cout, filtered.fit_quantile(tau));
  }

  const auto all_nonzero = dataset().nonzero();
  util::print_section(std::cout,
                      "Table 9: Quantile regression, all non-zero HOF rates "
                      "(paper: to-3G ~5.0-5.5)");
  for (const double tau : {0.2, 0.4, 0.6, 0.8}) {
    bench::print_quantile_fit(std::cout, all_nonzero.fit_quantile(tau));
  }
}

void BM_QuantileFit(benchmark::State& state) {
  const auto filtered = dataset().filtered(50.0, 10, 30'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filtered.fit_quantile(0.5).iterations);
  }
}
BENCHMARK(BM_QuantileFit);

}  // namespace

int main(int argc, char** argv) {
  print_quantile_tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
