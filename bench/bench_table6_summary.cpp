// Table 6 — Summary statistics of the sector-day modeling dataset.
// Paper: Daily HOs {1, 76, 1989, 6431, 8591, 953287}; HOF rate (%) {0, 0,
// 0.069, 6.131, 4.191, 100}.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "core/hof_dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

const core::HofModelingDataset& dataset() {
  static const core::HofModelingDataset ds = [] {
    const auto& w = bench::modeling_world();
    return core::HofModelingDataset::build(*w.sector_day, w.sim->deployment(),
                                           w.sim->country());
  }();
  return ds;
}

void add_summary_row(util::TextTable& t, const std::string& name,
                     const analysis::SixNumberSummary& s, int precision) {
  t.add_row({name, util::TextTable::num(s.min, precision),
             util::TextTable::num(s.q1, precision),
             util::TextTable::num(s.median, precision),
             util::TextTable::num(s.mean, precision),
             util::TextTable::num(s.q3, precision),
             util::TextTable::num(s.max, precision)});
}

void print_table6() {
  util::print_section(std::cout, "Table 6: Summary stats of the modeling dataset");
  util::TextTable t{{"Feature", "Min", "1st Qu", "Median", "Mean", "3rd Qu", "Max"}};
  t.add_row({"Daily HOs (paper)", "1", "76", "1989", "6431", "8591", "953287"});
  add_summary_row(t, "Daily HOs (measured)", dataset().summary_daily_hos(), 0);
  t.add_row({"HOF rate % (paper)", "0.0", "0.0", "0.069", "6.131", "4.191", "100.0"});
  add_summary_row(t, "HOF rate % (measured)", dataset().summary_hof_rate(), 3);
  t.print(std::cout);
  std::cout << "(absolute HO counts scale with the configured UE count; the paper's\n"
               " shape to preserve is median << mean on both columns)\n";
}

void BM_SummaryStats(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataset().summary_hof_rate().mean);
  }
}
BENCHMARK(BM_SummaryStats);

}  // namespace

int main(int argc, char** argv) {
  print_table6();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
