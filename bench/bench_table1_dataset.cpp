// Table 1 — Dataset statistics.
//
// Regenerates the paper's dataset-statistics table at the configured scale
// and reports the full-scale equivalents next to the paper's values.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_table1() {
  const auto& w = bench::simulated_world();
  const auto stats = core::dataset_stats(*w.sim, w.sim->records_emitted());

  util::print_section(std::cout, "Table 1: Dataset statistics");
  util::TextTable t{{"Feature", "Paper", "This run", "Full-scale equivalent"}};
  t.add_row({"Area covered", "Country in Europe (300+ districts)",
             std::to_string(stats.districts) + " districts (synthetic country)",
             std::to_string(stats.districts) + " districts"});
  t.add_row({"# of cell sites", "24k+", std::to_string(stats.cell_sites),
             util::TextTable::num(stats.full_scale_sites, 0)});
  t.add_row({"# of radio sectors", "350k+", std::to_string(stats.radio_sectors),
             util::TextTable::num(stats.full_scale_sectors, 0)});
  t.add_row({"# of UEs measured", "~40M", std::to_string(stats.ues_measured),
             util::TextTable::num(stats.full_scale_ues, 0)});
  t.add_row({"# handovers (daily)", "1.7B+",
             util::TextTable::num(stats.daily_handovers, 0),
             util::TextTable::num(stats.full_scale_daily_handovers, 0)});
  t.add_row({"Measurement duration", "4 weeks (28 days)",
             std::to_string(stats.days) + " days", "-"});
  t.print(std::cout);
}

/// Streaming throughput of the telemetry path: how fast records pass
/// through a retaining sink (the operator-pipeline hot path).
void BM_RecordStreaming(benchmark::State& state) {
  telemetry::HandoverRecord record;
  record.timestamp = 12345;
  record.duration_ms = 43.0f;
  for (auto _ : state) {
    telemetry::SignalingDataset sink;
    sink.reserve(static_cast<std::size_t>(state.range(0)));
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      record.timestamp += 17;
      sink.consume(record);
    }
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordStreaming)->Arg(100'000);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
