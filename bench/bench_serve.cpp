// Steady-state benchmark for the serve-mode ingest path.
//
// Simulates a long-running deployment: a writer commits synthetic handover
// days into the WAL while a WalTailer (checkpoints + retention on) keeps
// rolling aggregates current. Reports ingest records/sec per day and
// asserts the tailer's memory stays FLAT: with a bounded window and
// logarithmic sketches, RSS after the last simulated day may not exceed the
// post-warmup baseline by more than a small slack, no matter how many days
// stream past. Writes BENCH_serve.json for cross-PR tracking.
//
//   $ bench_serve [--smoke] [--out PATH]
//
// --smoke shrinks the stream for CI. Scale knobs: TL_BENCH_SERVE_DAYS,
// TL_BENCH_SERVE_RECORDS (per day). The RSS assertion is Linux-only
// (/proc/self/status VmRSS); elsewhere the bench reports without gating.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "io/file.hpp"
#include "serve/wal_tailer.hpp"
#include "telemetry/record_log.hpp"
#include "util/sim_time.hpp"

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Deterministic synthetic record, cheap enough that WAL framing and the
/// tailer dominate the measurement rather than record construction.
tl::telemetry::HandoverRecord make_record(int day, std::uint32_t i) {
  tl::telemetry::HandoverRecord r;
  r.timestamp = static_cast<tl::util::TimestampMs>(day) * tl::util::kMsPerDay +
                (i % 86'000'000u);
  r.success = (i % 23) != 0;
  r.duration_ms = 20.0f + static_cast<float>((i * 37 + day * 11) % 900);
  r.anon_user_id = 0x5E11ULL + i % 50'000;
  r.source_sector = i % 2'000;
  r.target_sector = (i + 7) % 2'000;
  r.district = 1 + i % 32;
  r.vendor = static_cast<tl::topology::Vendor>(i % 4);
  r.target_rat = static_cast<tl::topology::ObservedRat>(i % 3);
  return r;
}

/// Resident set size in kB from /proc/self/status; 0 when unavailable.
std::uint64_t rss_kb() {
#ifdef __linux__
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
#endif
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--smoke] [--out PATH]\n";
      return 2;
    }
  }

  const int days = static_cast<int>(
      env_double("TL_BENCH_SERVE_DAYS", smoke ? 6 : 14));
  const std::uint32_t per_day = static_cast<std::uint32_t>(
      env_double("TL_BENCH_SERVE_RECORDS", smoke ? 40'000 : 200'000));
  // Flat-RSS gate: measured after a warmup long enough that the window ring
  // and sketch levels have reached steady state.
  const int warmup_days = 3;
  const std::uint64_t rss_slack_kb = 16 * 1024;

  const std::string root =
      (std::filesystem::temp_directory_path() / "tl_bench_serve").string();
  std::filesystem::remove_all(root);
  auto& real = io::StdioFileSystem::instance();

  telemetry::RecordLog::Options wal_opt;
  wal_opt.directory = root;
  wal_opt.max_segment_bytes = 8ull << 20;
  telemetry::RecordLog log{real, wal_opt};
  log.open();

  serve::WalTailer::Options opt;
  opt.wal_directory = root;
  opt.checkpoint_path = root + "/serve.ckpt";
  opt.window_days = 4;
  opt.sketch_k = 128;
  opt.checkpoint_every_days = 1;
  opt.retention = true;
  serve::WalTailer tailer{real, opt};
  tailer.open();

  std::cerr << "[bench_serve] days=" << days << " records/day=" << per_day
            << " window=" << opt.window_days << " sketch_k=" << opt.sketch_k
            << "\n";

  std::vector<double> ingest_rates;
  std::uint64_t rss_after_warmup = 0;
  std::uint64_t retired_total = 0;
  for (int day = 0; day < days; ++day) {
    for (std::uint32_t i = 0; i < per_day; ++i) log.append(make_record(day, i));
    log.commit_day(day, {});

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t delivered = 0;
    while (true) {
      const serve::WalTailer::PollResult r = tailer.poll();
      delivered += r.records_delivered;
      retired_total += r.segments_retired;
      if (r.state == telemetry::TailState::kClean) break;
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate = wall_s > 0 ? static_cast<double>(delivered) / wall_s : 0;
    if (day >= warmup_days) ingest_rates.push_back(rate);
    if (day == warmup_days - 1) rss_after_warmup = rss_kb();
    std::cerr << "[bench_serve] day=" << day << " ingest=" << delivered
              << " records in " << wall_s * 1000 << " ms ("
              << static_cast<std::uint64_t>(rate) << "/s), rss=" << rss_kb()
              << " kB, sketch_items="
              << tailer.aggregates().stored_sketch_items() << "\n";
  }
  const std::uint64_t rss_final = rss_kb();

  // Steady-state rate: median of the post-warmup days.
  std::sort(ingest_rates.begin(), ingest_rates.end());
  const double steady_rate =
      ingest_rates.empty() ? 0 : ingest_rates[ingest_rates.size() / 2];

  // Per-key sketch state: the serialized aggregate image over its day keys.
  std::vector<std::uint8_t> state;
  tailer.aggregates().serialize(state);
  const std::size_t state_per_day = state.size() / (opt.window_days + 1);

  const auto report = tailer.report();
  std::cerr << "[bench_serve] steady-state ingest: "
            << static_cast<std::uint64_t>(steady_rate) << " records/s\n"
            << "[bench_serve] window p50/p90/p99 = " << report.p50_ms << "/"
            << report.p90_ms << "/" << report.p99_ms << " ms (rank error <= "
            << report.quantile_rank_error << ")\n"
            << "[bench_serve] aggregate state: " << state.size() << " bytes ("
            << state_per_day << " per day-key), "
            << tailer.aggregates().stored_sketch_items() << " sketch items, "
            << retired_total << " segments retired\n"
            << "[bench_serve] rss after warmup day " << warmup_days - 1 << ": "
            << rss_after_warmup << " kB, final: " << rss_final << " kB\n";

  const bool rss_measured = rss_after_warmup > 0 && rss_final > 0;
  const bool rss_flat =
      !rss_measured || rss_final <= rss_after_warmup + rss_slack_kb;

  std::ofstream json{out_path, std::ios::trunc};
  json << "{\n"
       << "  \"days\": " << days << ",\n"
       << "  \"records_per_day\": " << per_day << ",\n"
       << "  \"window_days\": " << opt.window_days << ",\n"
       << "  \"sketch_k\": " << opt.sketch_k << ",\n"
       << "  \"steady_records_per_sec\": "
       << static_cast<std::uint64_t>(steady_rate) << ",\n"
       << "  \"state_bytes\": " << state.size() << ",\n"
       << "  \"state_bytes_per_day_key\": " << state_per_day << ",\n"
       << "  \"sketch_items\": " << tailer.aggregates().stored_sketch_items()
       << ",\n"
       << "  \"segments_retired\": " << retired_total << ",\n"
       << "  \"rss_after_warmup_kb\": " << rss_after_warmup << ",\n"
       << "  \"rss_final_kb\": " << rss_final << ",\n"
       << "  \"rss_flat\": " << (rss_flat ? "true" : "false") << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "[bench_serve] FAIL: could not write " << out_path << "\n";
    return 1;
  }
  std::cerr << "[bench_serve] wrote " << out_path << "\n";
  std::filesystem::remove_all(root);

  if (!rss_flat) {
    std::cerr << "[bench_serve] FAIL: RSS grew " << rss_final - rss_after_warmup
              << " kB past the post-warmup baseline (slack " << rss_slack_kb
              << " kB) — serve-mode memory is not flat\n";
    return 1;
  }
  if (tailer.aggregates().days_sealed() !=
      static_cast<std::uint64_t>(days)) {
    std::cerr << "[bench_serve] FAIL: tailer sealed "
              << tailer.aggregates().days_sealed() << " days, expected " << days
              << "\n";
    return 1;
  }
  return 0;
}
