// Fig. 8 — HO duration, horizontal vs vertical (ECDFs): intra 4G/5G-NSA
// completes in tens of ms (median 43 ms), to-3G in hundreds (412 ms),
// to-2G in seconds (median ~1 s, p95 3.8 s).

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/ecdf.hpp"
#include "bench_world.hpp"
#include "core_network/duration_model.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;
using topology::ObservedRat;

void print_fig8() {
  const auto& w = bench::simulated_world();

  util::print_section(std::cout, "Fig. 8: HO signaling time per HO type (successes)");
  util::TextTable t{{"HO type", "Paper median", "Measured median", "Paper p95",
                     "Measured p95", "samples"}};
  const struct {
    ObservedRat rat;
    const char* median;
    const char* p95;
  } rows[] = {{ObservedRat::kG45Nsa, "43 ms", "~90 ms"},
              {ObservedRat::kG3, "412 ms", ">1 s"},
              {ObservedRat::kG2, "~1 s", "3.8 s"}};
  for (const auto& row : rows) {
    const auto& r = w.durations->durations(row.rat);
    if (r.values().empty()) {
      t.add_row({std::string{to_string(row.rat)}, row.median, "-", row.p95, "-", "0"});
      continue;
    }
    t.add_row({std::string{to_string(row.rat)}, row.median,
               util::TextTable::num(r.quantile(0.5), 0) + " ms", row.p95,
               util::TextTable::num(r.quantile(0.95), 0) + " ms",
               std::to_string(r.seen())});
  }
  t.print(std::cout);

  util::print_section(std::cout, "Fig. 8: ECDF series (duration ms -> F)");
  util::TextTable e{{"F", "Intra 4G/5G-NSA", "to 3G", "to 2G"}};
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    std::vector<std::string> row{util::TextTable::num(p, 2)};
    for (const auto rat : {ObservedRat::kG45Nsa, ObservedRat::kG3, ObservedRat::kG2}) {
      const auto& r = w.durations->durations(rat);
      row.push_back(r.values().empty()
                        ? std::string{"-"}
                        : util::TextTable::num(r.quantile(p), 0) + " ms");
    }
    e.add_row(row);
  }
  e.print(std::cout);
}

void BM_DurationSampling(benchmark::State& state) {
  const corenet::DurationModel dm;
  util::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dm.success_duration_ms(ObservedRat::kG3, rng));
  }
}
BENCHMARK(BM_DurationSampling);

void BM_EcdfConstruction(benchmark::State& state) {
  const auto& w = bench::simulated_world();
  const auto& values = w.durations->durations(ObservedRat::kG45Nsa).values();
  for (auto _ : state) {
    const analysis::Ecdf ecdf{values};
    benchmark::DoNotOptimize(ecdf.at(43.0));
  }
}
BENCHMARK(BM_EcdfConstruction);

}  // namespace

int main(int argc, char** argv) {
  print_fig8();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
