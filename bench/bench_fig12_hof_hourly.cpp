// Fig. 12 — HOF counts per hour in urban and rural areas, normalized by
// the number of active sectors of each class. Paper: morning peak
// [7:00-9:00), afternoon peak [15:00-18:00), rural median +32.4% over urban
// during [7:00-8:00).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig12() {
  const auto& w = bench::simulated_world();
  const auto hourly = w.temporal->hourly_hof_per_active_sector();
  const auto& rural = hourly[static_cast<std::size_t>(geo::AreaType::kRural)];
  const auto& urban = hourly[static_cast<std::size_t>(geo::AreaType::kUrban)];

  util::print_section(std::cout,
                      "Fig. 12: HOFs per hour per active sector (urban vs rural)");
  util::TextTable t{{"Hour", "Urban", "Rural", "Rural/Urban"}};
  for (int h = 0; h < 24; ++h) {
    const double ratio = urban[h] > 0.0 ? rural[h] / urban[h] : 0.0;
    t.add_row({std::to_string(h) + ":00", util::TextTable::num(urban[h], 3),
               util::TextTable::num(rural[h], 3), util::TextTable::num(ratio, 2)});
  }
  t.print(std::cout);

  const double ratio_7 = urban[7] > 0.0 ? rural[7] / urban[7] - 1.0 : 0.0;
  std::cout << "Rural excess at [7:00-8:00) (paper: +32.4%): "
            << util::TextTable::pct(ratio_7, 1) << "\n";
  // Peaks.
  int peak_hour = 0;
  for (int h = 1; h < 24; ++h) {
    if (rural[h] > rural[peak_hour]) peak_hour = h;
  }
  std::cout << "Rural HOF peak hour (paper: morning commute [7:00-9:00)): "
            << peak_hour << ":00\n";
}

void BM_HourlyHofReduce(benchmark::State& state) {
  const auto& w = bench::simulated_world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.temporal->hourly_hof_per_active_sector()[0].size());
  }
}
BENCHMARK(BM_HourlyHofReduce);

}  // namespace

int main(int argc, char** argv) {
  print_fig12();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
