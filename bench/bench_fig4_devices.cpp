// Fig. 4a — Device-type and manufacturer shares.
// Fig. 4b — Supported-RAT shares, overall and per device type.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig4a() {
  const auto& w = bench::static_world();
  const auto& pop = w.sim->population();
  const auto& catalog = w.sim->catalog();

  util::print_section(std::cout, "Fig. 4a: Device types");
  const auto shares = pop.type_shares();
  util::TextTable t{{"Device type", "Paper", "Measured"}};
  const char* paper[3] = {"59.1%", "39.8%", "1.1%"};
  for (const auto type : devices::kAllDeviceTypes) {
    t.add_row({std::string{devices::to_string(type)},
               paper[static_cast<std::size_t>(type)],
               util::TextTable::pct(shares[static_cast<std::size_t>(type)], 1)});
  }
  t.print(std::cout);

  util::print_section(std::cout, "Fig. 4a: Top manufacturers per type (measured share within type)");
  std::map<devices::ManufacturerId, std::uint64_t> counts;
  std::array<std::uint64_t, 3> type_totals{};
  for (const auto& ue : pop.ues()) {
    ++counts[ue.manufacturer];
    ++type_totals[static_cast<std::size_t>(ue.type)];
  }
  util::TextTable m{{"Type", "Manufacturer", "Measured", "Paper (where reported)"}};
  for (const auto type : devices::kAllDeviceTypes) {
    std::vector<std::pair<std::uint64_t, const devices::Manufacturer*>> ranked;
    for (const auto& maker : catalog.manufacturers()) {
      if (maker.type == type) ranked.push_back({counts[maker.id], &maker});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
      const auto& maker = *ranked[i].second;
      std::string paper_share = "-";
      if (maker.name == "Apple") paper_share = "54.8%";
      if (maker.name == "Samsung") paper_share = "30.2%";
      m.add_row({std::string{devices::to_string(type)}, maker.name,
                 util::TextTable::pct(static_cast<double>(ranked[i].first) /
                                          static_cast<double>(
                                              type_totals[static_cast<std::size_t>(type)]),
                                      1),
                 paper_share});
    }
  }
  m.print(std::cout);
}

void print_fig4b() {
  const auto& w = bench::static_world();
  const auto& pop = w.sim->population();

  util::print_section(std::cout, "Fig. 4b: Supported RATs");
  const auto overall = pop.rat_support_shares();
  util::TextTable t{{"Population", "2G only", "up to 3G", "up to 4G", "5G"}};
  t.add_row({"Paper (all UEs)", "12.6%", "20.1%", "67.2% (4G+5G)", ""});
  t.add_row({"Measured (all UEs)", util::TextTable::pct(overall[0], 1),
             util::TextTable::pct(overall[1], 1), util::TextTable::pct(overall[2], 1),
             util::TextTable::pct(overall[3], 1)});

  // Per type.
  std::array<std::array<std::uint64_t, 4>, 3> by_type{};
  std::array<std::uint64_t, 3> totals{};
  for (const auto& ue : pop.ues()) {
    ++by_type[static_cast<std::size_t>(ue.type)][static_cast<std::size_t>(ue.rat_support)];
    ++totals[static_cast<std::size_t>(ue.type)];
  }
  for (const auto type : devices::kAllDeviceTypes) {
    const auto i = static_cast<std::size_t>(type);
    std::vector<std::string> row{std::string{"Measured ("} +
                                 std::string{devices::to_string(type)} + ")"};
    for (int s = 0; s < 4; ++s) {
      row.push_back(util::TextTable::pct(
          static_cast<double>(by_type[i][s]) / static_cast<double>(totals[i]), 1));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "Paper: smartphones 51.4% up-to-4G / 48.5% 5G; >80% of M2M and >50% of\n"
               "feature phones support at most 3G.\n";
}

void BM_CatalogBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto catalog = devices::Catalog::build({2'000, 17});
    benchmark::DoNotOptimize(catalog.models().size());
  }
}
BENCHMARK(BM_CatalogBuild);

void BM_ModelSampling(benchmark::State& state) {
  const auto catalog = devices::Catalog::build({2'000, 17});
  util::Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        catalog.sample_model(devices::DeviceType::kSmartphone, rng).tac);
  }
}
BENCHMARK(BM_ModelSampling);

}  // namespace

int main(int argc, char** argv) {
  print_fig4a();
  print_fig4b();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
