#pragma once

// Shared bench-scale world. Every experiment binary regenerates its table or
// figure from this world; the scale is adjustable without recompiling:
//
//   TL_BENCH_SCALE=0.05 TL_BENCH_UES=60000 TL_BENCH_DAYS=14 ./bench_...
//
// Defaults keep a full bench sweep (one process per experiment) at a few
// minutes while leaving every reported share and shape stable.

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"

namespace tl::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline core::StudyConfig bench_config() {
  core::StudyConfig cfg;
  cfg.scale = env_double("TL_BENCH_SCALE", 0.02);
  cfg.days = static_cast<int>(env_double("TL_BENCH_DAYS", 7));
  cfg.seed = static_cast<std::uint64_t>(env_double("TL_BENCH_SEED", 42));
  cfg.census.districts = 320;
  cfg.census.total_population = 47'000'000;
  cfg.finalize();
  cfg.population.count =
      static_cast<std::uint32_t>(env_double("TL_BENCH_UES", 25'000));
  return cfg;
}

/// World with every aggregator attached; simulation runs once per process.
struct World {
  core::StudyConfig config;
  std::unique_ptr<core::Simulator> sim;
  std::unique_ptr<telemetry::TemporalAggregator> temporal;
  std::unique_ptr<telemetry::SectorDayAggregator> sector_day;
  std::unique_ptr<telemetry::DistrictAggregator> districts;
  std::unique_ptr<telemetry::CauseAggregator> causes;
  std::unique_ptr<telemetry::DurationAggregator> durations;
  std::unique_ptr<telemetry::TypeMixAggregator> mix;
  telemetry::UeDayStore ue_days;
};

/// Builds (once) the world *with* a full simulation run.
inline const World& simulated_world() {
  static const World world = [] {
    World w;
    w.config = bench_config();
    std::cerr << "[bench] building world: scale=" << w.config.scale
              << " ues=" << w.config.population.count << " days=" << w.config.days
              << "\n";
    w.sim = std::make_unique<core::Simulator>(w.config);
    const auto n_sectors = w.sim->deployment().sectors().size();
    const auto n_districts = w.sim->country().districts().size();
    const auto n_makers = w.sim->catalog().manufacturers().size();
    w.temporal =
        std::make_unique<telemetry::TemporalAggregator>(n_sectors, w.config.days);
    w.sector_day =
        std::make_unique<telemetry::SectorDayAggregator>(n_sectors, w.config.days);
    w.districts = std::make_unique<telemetry::DistrictAggregator>(n_districts, n_makers);
    w.causes = std::make_unique<telemetry::CauseAggregator>(w.config.days, n_makers);
    w.durations = std::make_unique<telemetry::DurationAggregator>();
    w.mix = std::make_unique<telemetry::TypeMixAggregator>(w.config.days);
    w.sim->add_sink(w.temporal.get());
    w.sim->add_sink(w.sector_day.get());
    w.sim->add_sink(w.districts.get());
    w.sim->add_sink(w.causes.get());
    w.sim->add_sink(w.durations.get());
    w.sim->add_sink(w.mix.get());
    w.sim->add_metrics_sink(&w.ue_days);
    std::cerr << "[bench] simulating " << w.config.days << " days...\n";
    w.sim->run();
    std::cerr << "[bench] " << w.sim->records_emitted() << " records streamed\n";
    return w;
  }();
  return world;
}

/// World tuned for the §6.3 modeling experiments (Tables 4-9, Fig. 16).
///
/// The paper's sector-day dataset has a median of ~2k HOs per observation;
/// reproducing the regressions needs comparable per-sector volumes, so this
/// world shrinks the deployment harder than the UE population (few hundred
/// source sectors, tens of thousands of UEs). Override via TL_MODEL_*.
inline const World& modeling_world() {
  static const World world = [] {
    World w;
    w.config = bench_config();
    w.config.scale = env_double("TL_MODEL_SITE_SCALE", 0.004);
    w.config.days = static_cast<int>(env_double("TL_MODEL_DAYS", 7));
    w.config.finalize();
    w.config.population.count =
        static_cast<std::uint32_t>(env_double("TL_MODEL_UES", 22'000));
    std::cerr << "[bench] building modeling world: site-scale=" << w.config.scale
              << " ues=" << w.config.population.count << " days=" << w.config.days
              << "\n";
    w.sim = std::make_unique<core::Simulator>(w.config);
    const auto n_sectors = w.sim->deployment().sectors().size();
    w.sector_day =
        std::make_unique<telemetry::SectorDayAggregator>(n_sectors, w.config.days);
    w.sim->add_sink(w.sector_day.get());
    std::cerr << "[bench] simulating " << w.config.days << " days...\n";
    w.sim->run();
    std::cerr << "[bench] " << w.sim->records_emitted() << " records streamed\n";
    return w;
  }();
  return world;
}

/// Builds (once) a world *without* running the simulation — enough for the
/// topology/devices/census experiments.
inline const World& static_world() {
  static const World world = [] {
    World w;
    w.config = bench_config();
    std::cerr << "[bench] building static world: scale=" << w.config.scale << "\n";
    w.sim = std::make_unique<core::Simulator>(w.config);
    return w;
  }();
  return world;
}

}  // namespace tl::bench
