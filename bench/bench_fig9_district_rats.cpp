// Fig. 9 — Distribution of (a) intra 4G/5G-NSA, (b) to-3G, (c) to-2G HO
// shares across districts: dense urban districts near-exclusively intra
// (up to 99.92%), remote districts up to 58.1% on 3G (26.5% average in the
// 6% least dense), 2G marginal with ~0.5% in a handful of districts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig9() {
  const auto& w = bench::simulated_world();
  const auto shares = core::district_rat_shares(*w.sim, *w.districts);

  util::print_section(std::cout, "Fig. 9: HO-type shares across districts");
  util::TextTable t{{"Statistic", "Paper", "Measured"}};
  t.add_row({"max intra 4G/5G-NSA share", "99.92%",
             util::TextTable::pct(shares.max_intra_share, 2)});
  t.add_row({"max to-3G share (remote district)", "58.1%",
             util::TextTable::pct(shares.max_3g_share, 1)});
  t.add_row({"mean to-3G share, 6% least dense districts", "26.5%",
             util::TextTable::pct(shares.mean_3g_least_dense, 1)});
  t.add_row({"max to-2G share", "~0.5%",
             util::TextTable::pct(shares.max_2g_share, 2)});
  t.print(std::cout);

  // Distribution summary across districts with observed HOs.
  std::vector<double> intra, g3, g2;
  for (const auto& s : shares.shares) {
    if (s[0] + s[1] + s[2] == 0.0) continue;
    g2.push_back(s[0]);
    g3.push_back(s[1]);
    intra.push_back(s[2]);
  }
  std::sort(intra.begin(), intra.end());
  std::sort(g3.begin(), g3.end());
  std::sort(g2.begin(), g2.end());
  util::TextTable d{{"Percentile (districts)", "intra share", "to-3G share", "to-2G share"}};
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    const auto idx = static_cast<std::size_t>(p * (intra.size() - 1));
    d.add_row({util::TextTable::pct(p, 0), util::TextTable::pct(intra[idx], 2),
               util::TextTable::pct(g3[idx], 2), util::TextTable::pct(g2[idx], 4)});
  }
  d.print(std::cout);
  std::cout << "(districts with observed HOs: " << intra.size() << " of "
            << shares.shares.size() << ")\n";
}

void BM_DistrictShareReduce(benchmark::State& state) {
  const auto& w = bench::simulated_world();
  for (auto _ : state) {
    const auto shares = core::district_rat_shares(*w.sim, *w.districts);
    benchmark::DoNotOptimize(shares.max_3g_share);
  }
}
BENCHMARK(BM_DistrictShareReduce);

}  // namespace

int main(int argc, char** argv) {
  print_fig9();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
