// Fig. 6 — Daily HOs per square km per district vs population density
// (Pearson 0.97; 2.1M HOs/km2 in the capital centre, 60 in the most remote
// district, 13.1k mean).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig6() {
  const auto& w = bench::simulated_world();
  const auto density = core::district_ho_density(*w.sim, *w.districts);

  util::print_section(std::cout, "Fig. 6: Daily HOs per km^2 per district");
  std::cout << "Pearson(HOs/km^2, residents/km^2) = "
            << util::TextTable::num(density.pearson, 3) << "   (paper: 0.97)\n";

  const double scale_up = 1.0 /
      (static_cast<double>(w.config.population.count) / core::StudyConfig::kFullScaleUes);
  util::TextTable t{{"Statistic", "Paper (full scale)", "Measured", "Measured x scale"}};
  t.add_row({"max HOs/km^2 (capital centre)", "~2.1M",
             util::TextTable::num(density.max_hos_per_km2, 1),
             util::TextTable::num(density.max_hos_per_km2 * scale_up, 0)});
  t.add_row({"district mean HOs/km^2", "13.1k",
             util::TextTable::num(density.mean_hos_per_km2, 2),
             util::TextTable::num(density.mean_hos_per_km2 * scale_up, 0)});
  t.add_row({"min HOs/km^2 (remote)", "~60",
             util::TextTable::num(density.min_hos_per_km2, 3),
             util::TextTable::num(density.min_hos_per_km2 * scale_up, 1)});
  t.print(std::cout);

  // Decile profile of the distribution across districts.
  std::vector<double> sorted = density.hos_per_km2;
  std::sort(sorted.begin(), sorted.end());
  util::TextTable d{{"Percentile", "HOs/km^2 (this run)"}};
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    d.add_row({util::TextTable::pct(p, 0),
               util::TextTable::num(sorted[static_cast<std::size_t>(
                                        p * (sorted.size() - 1))],
                                    2)});
  }
  d.print(std::cout);
}

void BM_DistrictDensityReduce(benchmark::State& state) {
  const auto& w = bench::simulated_world();
  for (auto _ : state) {
    const auto density = core::district_ho_density(*w.sim, *w.districts);
    benchmark::DoNotOptimize(density.pearson);
  }
}
BENCHMARK(BM_DistrictDensityReduce);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
