// Table 3 (covariates) + Table 4 (univariate log-linear model) + the §6.3
// ANOVA / Kruskal-Wallis tests and median HOF rates per HO type.
//
// Paper Table 4: Intra -2.77 / to-3G +5.12 / to-2G +6.82; medians 0.04%,
// 5.85%, 21.42%; ANOVA p < 0.001 with eta^2 = 0.81.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "core/hof_dataset.hpp"
#include "model_printing.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

const core::HofModelingDataset& dataset() {
  static const core::HofModelingDataset ds = [] {
    const auto& w = bench::modeling_world();
    return core::HofModelingDataset::build(*w.sector_day, w.sim->deployment(),
                                           w.sim->country());
  }();
  return ds;
}

void print_table3() {
  util::print_section(std::cout, "Table 3: Regression covariates");
  util::TextTable t{{"Feature", "Values"}};
  t.add_row({"Number of HOs per day", ">= 0"});
  t.add_row({"RATs", "4G/5G-NSA, 3G, 2G"});
  t.add_row({"District population", ">= 0"});
  t.add_row({"Sector Region", "West, South, North, Capital area"});
  t.add_row({"Area Type", "Rural / Urban (+ unclassified postcodes)"});
  t.add_row({"Antenna Vendor", "4 vendors (V1, V2, V3, V4)"});
  t.print(std::cout);
  std::cout << "Observations (sector-day-HOtype rows): " << dataset().size()
            << "  (paper: 6.7M at full scale)\n";
}

void print_first_look() {
  util::print_section(std::cout, "First look (§6.3): median HOF rate per HO type");
  const auto medians = dataset().median_rate_by_type();
  util::TextTable t{{"HO type", "Paper median", "Measured median"}};
  t.add_row({"Intra 4G/5G-NSA", "0.04%",
             util::TextTable::num(medians[2], 3) + "%"});
  t.add_row({"4G/5G-NSA -> 3G", "5.85%",
             util::TextTable::num(medians[1], 2) + "%"});
  t.add_row({"4G/5G-NSA -> 2G", "21.42%",
             util::TextTable::num(medians[0], 2) + "%"});
  t.print(std::cout);

  const auto anova = dataset().anova_by_type();
  std::cout << "ANOVA on log(HOF rate) by HO type: F = "
            << util::TextTable::num(anova.f_statistic, 0) << ", p "
            << (anova.p_value < 1e-12 ? "< 1e-12" : util::TextTable::num(anova.p_value, 6))
            << ", eta^2 = " << util::TextTable::num(anova.eta_squared, 2)
            << "   (paper: p < .001, eta^2 = 0.81)\n";
  const auto kw = dataset().kruskal_wallis_by_type();
  std::cout << "Kruskal-Wallis: H = " << util::TextTable::num(kw.h_statistic, 0)
            << ", p " << (kw.p_value < 1e-12 ? "< 1e-12"
                                             : util::TextTable::num(kw.p_value, 6))
            << "   (paper: p = 0)\n";
}

void print_table4() {
  util::print_section(std::cout,
                      "Table 4: Univariate linear model for log(HOF rate) "
                      "(paper: -2.77 / +5.12 / +6.82)");
  const auto model = dataset().nonzero().fit_univariate();
  bench::print_model(std::cout, model);
}

void BM_UnivariateFit(benchmark::State& state) {
  const auto nonzero = dataset().nonzero();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nonzero.fit_univariate().r_squared);
  }
}
BENCHMARK(BM_UnivariateFit);

void BM_AnovaByType(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataset().anova_by_type().f_statistic);
  }
}
BENCHMARK(BM_AnovaByType);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  print_first_look();
  print_table4();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
