// Fig. 14a — HOF cause shares (8 causes cover 92% of failures; 75% of all
// HOFs are on the to-3G path).
// Fig. 14b — HO signaling time per cause (#3/#6 abort at 0 ms; #4 ~81 ms;
// #1/#2 seconds; #8 a ~10 s timeout).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "core_network/failure_causes.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;
using telemetry::CauseAggregator;

void print_fig14a() {
  const auto& w = bench::simulated_world();
  const auto& causes = *w.causes;

  util::print_section(std::cout, "Fig. 14a: HOF cause shares (of all failures)");
  util::TextTable t{{"Cause", "Mean share", "min..max (daily)"}};
  double dominant = 0.0;
  for (std::size_t b = 0; b < CauseAggregator::kBuckets; ++b) {
    const auto share = causes.daily_share(b);
    if (b < 8) dominant += share.mean;
    t.add_row({CauseAggregator::bucket_label(b), util::TextTable::pct(share.mean, 1),
               util::TextTable::pct(share.min, 1) + ".." +
                   util::TextTable::pct(share.max, 1)});
  }
  t.print(std::cout);
  std::cout << "8 dominant causes cover (paper: 92%): "
            << util::TextTable::pct(dominant, 1) << "\n"
            << "Distinct cause codes observed (paper: 1k+ exist): "
            << causes.distinct_causes() << " of "
            << w.sim->cause_catalog().total_causes() << " in the catalog\n";

  const auto by_target = causes.failures_by_target();
  const double total = static_cast<double>(causes.total_failures());
  std::cout << "Failures on to-3G path (paper: 75%): "
            << util::TextTable::pct(by_target[1] / total, 1)
            << "; intra (paper: ~25%): " << util::TextTable::pct(by_target[2] / total, 1)
            << "; to-2G (paper: 0.03%): " << util::TextTable::pct(by_target[0] / total, 3)
            << "\n";
}

void print_fig14b() {
  const auto& w = bench::simulated_world();

  util::print_section(std::cout, "Fig. 14b: HO signaling time per failure cause");
  util::TextTable t{{"Cause", "Paper median", "Measured median", "Measured p95",
                     "samples"}};
  const char* paper_medians[9] = {"1-2 s", "1-2 s", "0 ms", "81 ms", "-",
                                  "0 ms",  "-",     ">10 s", "-"};
  for (std::size_t b = 0; b < CauseAggregator::kBuckets; ++b) {
    const auto& r = w.causes->durations(b);
    if (r.values().empty()) {
      t.add_row({CauseAggregator::bucket_label(b), paper_medians[b], "-", "-", "0"});
      continue;
    }
    t.add_row({CauseAggregator::bucket_label(b), paper_medians[b],
               util::TextTable::num(r.quantile(0.5), 0) + " ms",
               util::TextTable::num(r.quantile(0.95), 0) + " ms",
               std::to_string(r.seen())});
  }
  t.print(std::cout);
}

void BM_CauseSampling(benchmark::State& state) {
  const corenet::CauseCatalog catalog;
  util::Rng rng{5};
  corenet::CauseContext ctx;
  ctx.target = topology::ObservedRat::kG3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.sample(ctx, rng));
  }
}
BENCHMARK(BM_CauseSampling);

}  // namespace

int main(int argc, char** argv) {
  print_fig14a();
  print_fig14b();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
