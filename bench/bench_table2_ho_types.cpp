// Table 2 — Statistics per handover and device type (shares of all HOs,
// with min/max daily variation).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;
using topology::ObservedRat;

std::string share_cell(const telemetry::TypeMixAggregator::Share& s) {
  return util::TextTable::pct(s.mean, 2) + " [" + util::TextTable::pct(s.min, 2) + ".." +
         util::TextTable::pct(s.max, 2) + "]";
}

void print_table2() {
  const auto& w = bench::simulated_world();
  const auto& mix = *w.mix;

  util::print_section(std::cout, "Table 2: HO type x device type (share of all HOs)");
  util::TextTable t{{"Device type", "Intra 4G/5G-NSA", "to 3G", "to 2G", "All"}};
  const char* paper[4][4] = {
      {"88.28 +/- 0.77 %", "5.84 +/- 0.77 %", "<0.001%", "94.12%"},
      {"5.73 +/- 0.52 %", "0.02 +/- 0.01 %", "<0.001%", "5.75%"},
      {"0.13 +/- 0.05 %", "<0.001%", "<0.001%", "0.13%"},
      {"94.14 +/- 1.29 %", "5.86 +/- 0.78 %", "<0.001%", "-"},
  };
  int row = 0;
  for (const auto type : devices::kAllDeviceTypes) {
    const auto intra = mix.daily_share(type, ObservedRat::kG45Nsa);
    const auto g3 = mix.daily_share(type, ObservedRat::kG3);
    const auto g2 = mix.daily_share(type, ObservedRat::kG2);
    t.add_row({std::string{devices::to_string(type)} + " (paper)", paper[row][0],
               paper[row][1], paper[row][2], paper[row][3]});
    t.add_row({std::string{devices::to_string(type)} + " (measured)", share_cell(intra),
               share_cell(g3), share_cell(g2),
               util::TextTable::pct(intra.mean + g3.mean + g2.mean, 2)});
    ++row;
  }
  // All-devices row.
  const double total = static_cast<double>(mix.total());
  double intra_all = 0, g3_all = 0, g2_all = 0;
  for (const auto type : devices::kAllDeviceTypes) {
    intra_all += static_cast<double>(mix.count(type, ObservedRat::kG45Nsa));
    g3_all += static_cast<double>(mix.count(type, ObservedRat::kG3));
    g2_all += static_cast<double>(mix.count(type, ObservedRat::kG2));
  }
  t.add_row({"All devices (paper)", paper[3][0], paper[3][1], paper[3][2], paper[3][3]});
  t.add_row({"All devices (measured)", util::TextTable::pct(intra_all / total, 2),
             util::TextTable::pct(g3_all / total, 2),
             util::TextTable::pct(g2_all / total, 4), "-"});
  t.print(std::cout);
}

void BM_TypeMixConsume(benchmark::State& state) {
  telemetry::HandoverRecord r;
  for (auto _ : state) {
    telemetry::TypeMixAggregator agg{7};
    for (int i = 0; i < 100'000; ++i) {
      r.timestamp = (i * 6047) % (7 * util::kMsPerDay);
      r.device_type = static_cast<devices::DeviceType>(i % 3);
      agg.consume(r);
    }
    benchmark::DoNotOptimize(agg.total());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_TypeMixConsume);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
