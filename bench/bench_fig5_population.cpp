// Fig. 5 — Census population vs MNO-inferred population (R^2 = 0.92).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_world.hpp"
#include "core/home_inference.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig5() {
  const auto& w = bench::static_world();
  const auto result = core::infer_home_locations(w.sim->country(), w.sim->deployment(),
                                                 w.sim->population());

  util::print_section(std::cout, "Fig. 5: Inferred vs census population (district level)");
  std::cout << "R^2 (paper: 0.92): " << util::TextTable::num(result.r_squared(), 3)
            << "\nfit: census = " << util::TextTable::num(result.fit.intercept, 1)
            << " + " << util::TextTable::num(result.fit.slope, 2) << " * inferred\n";

  // Scatter extract: top-10 districts by census population.
  std::vector<std::size_t> order(result.census_population.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.census_population[a] > result.census_population[b];
  });
  util::TextTable t{{"District", "Census population", "Inferred MNO users"}};
  for (std::size_t i = 0; i < order.size() && i < 10; ++i) {
    const auto d = order[i];
    t.add_row({w.sim->country().district(static_cast<geo::DistrictId>(d)).name,
               std::to_string(result.census_population[d]),
               std::to_string(result.inferred_users[d])});
  }
  t.print(std::cout);
}

void BM_HomeInference(benchmark::State& state) {
  const auto& w = bench::static_world();
  for (auto _ : state) {
    const auto result = core::infer_home_locations(
        w.sim->country(), w.sim->deployment(), w.sim->population());
    benchmark::DoNotOptimize(result.r_squared());
  }
}
BENCHMARK(BM_HomeInference);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
