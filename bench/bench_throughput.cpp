// Throughput benchmark for the deterministic execution engine.
//
// Measures UE-days/sec and records/sec at 1/2/4/N worker threads on one
// fixed mid-size world (built once; each timed run restores to day 0 and
// re-simulates), and writes BENCH_throughput.json so the perf trajectory
// of the engine is tracked across PRs. The record stream is byte-identical
// at every thread count — verified here via a stream checksum, so a perf
// run that breaks determinism fails loudly instead of reporting a number.
//
//   $ bench_throughput [--smoke] [--resilience] [--obs] [--out PATH]
//
// --smoke shrinks the world to seconds of runtime (CI keeps the binary from
// rotting); the JSON schema is identical. Scale knobs: TL_BENCH_UES,
// TL_BENCH_DAYS, TL_BENCH_SCALE, TL_BENCH_SEED (see bench_world.hpp).
//
// --resilience measures the cost of supervision instead: the same world runs
// through the StudySupervisor with seeded task faults (throws, transient
// EIOs, slowdowns) injected into 0% / 1% / 5% of shard attempts, reporting
// UE-days/sec and the retry overhead each storm level costs, and writes
// BENCH_resilience.json. The stream checksum must not move across fault
// rates — a resilience run that changes bytes fails instead of reporting.
//
// --obs measures the cost of the observability layer (src/obs): the same
// world runs with no metrics registry installed vs. with a live registry
// receiving the full instrumentation, interleaved best-of-N per arm, and
// writes BENCH_obs.json. Two gates: the record stream must be byte-identical
// across arms (metrics are observational only), and the metrics-on best run
// may be at most TL_BENCH_OBS_GATE_PCT (default 2) percent slower than
// metrics-off. TL_BENCH_OBS_REPS overrides the repetition count.
//
// --profile runs the same thread sweep with a durable WAL attached and a
// metrics registry installed, and breaks each run's wall time into the
// engine's stages — shard simulation, ordered merge, WAL day commits — from
// the src/obs ScopedTimer histograms (tl_exec_shard_sim_seconds,
// tl_exec_shard_merge_seconds, tl_wal_commit_seconds). Written into
// BENCH_throughput.json with a "stages" object per thread count. Stage span
// sums accumulate across concurrent workers, so they are AGGREGATE seconds
// (reported as aggregate_s / aggregate_cpu_s), not wall time; the separate
// *_wall_share_pct fields give the ideal-balance wall-normalized share
// (sim / threads, merge and WAL as-is) so the breakdown is interpretable at
// every thread count — summing raw spans against wall used to report >100%.
// Each arm also carries shards_per_day: the serial path books one
// whole-population span per day into the shard-sim family while sharded
// arms book one per shard, so span counts are only comparable through that
// label. True process CPU per run (cpu_ms, from std::clock) sits next to
// wall_ms — on an oversubscribed machine concurrent wall spans double-count
// descheduled time, and cpu_ms is what exposes real work inflation.
//
// Scaling gates (both the plain sweep and --profile; TL_BENCH_SCALING_GATE=0
// disables): arms the hardware can actually run in parallel
// (hardware_concurrency >= threads) must scale — in --smoke the 2-thread arm
// must not lose to serial, full runs require 2 threads >= 1.5x serial
// (TL_BENCH_SPEEDUP2_GATE) and >= 70% efficiency at 4 threads
// (TL_BENCH_EFF4_GATE). On every machine, including single-core CI boxes
// where wall speedup is physically impossible, the 2-thread arm's process
// CPU may not exceed serial by more than TL_BENCH_INFLATION_GATE (default
// 1.25x) — the detector for the copy-merge / per-day-reallocation class of
// serialization regressions that once made sharded runs SLOWER than serial.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_world.hpp"
#include "core/simulator.hpp"
#include "exec/thread_pool.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "obs/study_monitor.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/task_fault_injector.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/sinks.hpp"
#include "util/crc32c.hpp"

namespace {

/// Cheap consumer standing in for a real aggregation pipeline: CRC32C over
/// the wire encoding of every record, so the stream's bytes are both
/// consumed (nothing optimizes away) and fingerprinted (determinism check).
class ChecksumSink final : public tl::telemetry::RecordSink {
 public:
  void consume(const tl::telemetry::HandoverRecord& record) override {
    buffer_.clear();
    tl::telemetry::RecordLog::encode_record(record, buffer_);
    crc_.update(buffer_.data(), buffer_.size());
    ++records_;
  }
  std::uint32_t checksum() const noexcept { return crc_.value(); }
  std::uint64_t records() const noexcept { return records_; }

 private:
  tl::util::Crc32c crc_;
  std::uint64_t records_ = 0;
  std::vector<std::uint8_t> buffer_;
};

struct Measurement {
  unsigned threads = 1;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;  ///< process CPU (all threads), from std::clock
  double ue_days_per_sec = 0.0;
  double records_per_sec = 0.0;
  std::uint64_t records = 0;
  std::uint32_t checksum = 0;
};

Measurement timed_run(tl::core::Simulator& sim, unsigned threads, int days,
                      std::uint64_t seed, std::uint64_t population) {
  ChecksumSink sink;
  tl::core::DayCheckpoint day0;
  day0.seed = seed;
  sim.set_threads(threads);
  sim.restore(day0);
  sim.add_sink(&sink);
  const std::clock_t cpu_start = std::clock();
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto stop = std::chrono::steady_clock::now();
  const std::clock_t cpu_stop = std::clock();
  sim.remove_sink(&sink);

  Measurement m;
  m.threads = threads;
  m.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  m.cpu_ms = static_cast<double>(cpu_stop - cpu_start) * 1000.0 /
             static_cast<double>(CLOCKS_PER_SEC);
  const double wall_s = m.wall_ms / 1000.0;
  const double ue_days = static_cast<double>(population) * days;
  m.ue_days_per_sec = wall_s > 0 ? ue_days / wall_s : 0.0;
  m.records = sink.records();
  m.records_per_sec = wall_s > 0 ? static_cast<double>(m.records) / wall_s : 0.0;
  m.checksum = sink.checksum();
  return m;
}

/// Best-of-N wrapper: re-runs the identical deterministic workload and keeps
/// the min-wall measurement (the standard scheduler-noise filter). Stream
/// bytes are identical across reps by construction, so keeping one run's
/// records/crc loses nothing.
Measurement best_timed_run(tl::core::Simulator& sim, unsigned threads, int days,
                           std::uint64_t seed, std::uint64_t population,
                           int reps) {
  Measurement best = timed_run(sim, threads, days, seed, population);
  for (int r = 1; r < reps; ++r) {
    const Measurement m = timed_run(sim, threads, days, seed, population);
    if (m.wall_ms < best.wall_ms) best = m;
  }
  return best;
}

/// The scaling gates described in the header comment. `results` must start
/// with the serial (1-thread) arm. Returns false (after printing why) when a
/// gate fails. Wall-clock gates apply only to arms the hardware can truly run
/// in parallel; the CPU-inflation gate applies everywhere — a 1-core box
/// cannot show speedup, but it can still prove the sharded path does not do
/// materially more WORK than serial.
bool check_scaling_gates(const std::vector<Measurement>& results, bool smoke,
                         unsigned hw) {
  if (tl::bench::env_double("TL_BENCH_SCALING_GATE", 1.0) == 0.0) {
    std::cerr << "[bench_throughput] scaling gates disabled via env\n";
    return true;
  }
  const Measurement& serial = results.front();
  const double speedup2_gate = tl::bench::env_double("TL_BENCH_SPEEDUP2_GATE", 1.5);
  const double eff4_gate = tl::bench::env_double("TL_BENCH_EFF4_GATE", 0.70);
  const double inflation_gate =
      tl::bench::env_double("TL_BENCH_INFLATION_GATE", 1.25);
  bool ok = true;
  for (const auto& m : results) {
    if (m.threads == 1) continue;
    const double speedup = m.wall_ms > 0 ? serial.wall_ms / m.wall_ms : 0.0;
    const double efficiency = speedup / m.threads;
    const double inflation = serial.cpu_ms > 0 ? m.cpu_ms / serial.cpu_ms : 1.0;
    std::cerr << "[bench_throughput] threads=" << m.threads << " speedup="
              << speedup << " efficiency=" << efficiency
              << " cpu_inflation=" << inflation << (hw < m.threads
              ? " (oversubscribed: wall gates skipped)" : "") << "\n";
    if (m.threads == 2 && inflation > inflation_gate) {
      std::cerr << "[bench_throughput] FAIL: 2-thread process CPU is "
                << inflation << "x serial (gate " << inflation_gate
                << "x) — the sharded path is doing extra work\n";
      ok = false;
    }
    if (hw < m.threads) continue;  // wall speedup physically unavailable
    if (m.threads == 2) {
      const double gate = smoke ? 1.0 : speedup2_gate;
      if (speedup < gate) {
        std::cerr << "[bench_throughput] FAIL: 2-thread speedup " << speedup
                  << " below the " << gate << "x gate\n";
        ok = false;
      }
    } else if (m.threads == 4 && !smoke && efficiency < eff4_gate) {
      std::cerr << "[bench_throughput] FAIL: 4-thread efficiency " << efficiency
                << " below the " << eff4_gate << " gate\n";
      ok = false;
    }
  }
  return ok;
}

struct StormMeasurement {
  double fault_rate = 0.0;
  double wall_ms = 0.0;
  double ue_days_per_sec = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t shard_attempts = 0;
  std::uint64_t records = 0;
  std::uint32_t checksum = 0;
};

StormMeasurement storm_run(tl::core::Simulator& sim, unsigned threads,
                           double fault_rate, int days, std::uint64_t seed,
                           std::uint64_t population) {
  using namespace tl;
  supervise::TaskFaultConfig storm;
  storm.seed = seed ^ 0xBE5111;
  storm.throw_rate = fault_rate / 3;
  storm.io_error_rate = fault_rate / 3;
  storm.slow_rate = fault_rate / 3;
  storm.slow_ms = 1;
  storm.max_faulty_attempts = 2;
  const supervise::TaskFaultInjector injector{storm};

  supervise::SupervisorOptions opt;
  opt.threads = threads;
  opt.backoff_initial_ms = 1;
  opt.backoff_cap_ms = 4;
  if (fault_rate > 0.0) opt.injector = &injector;
  supervise::StudySupervisor supervisor{opt};

  ChecksumSink sink;
  core::DayCheckpoint day0;
  day0.seed = seed;
  sim.restore(day0);
  sim.set_supervisor(&supervisor);
  sim.add_sink(&sink);
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto stop = std::chrono::steady_clock::now();
  sim.remove_sink(&sink);
  sim.set_supervisor(nullptr);

  StormMeasurement m;
  m.fault_rate = fault_rate;
  m.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  const double wall_s = m.wall_ms / 1000.0;
  m.ue_days_per_sec =
      wall_s > 0 ? static_cast<double>(population) * days / wall_s : 0.0;
  m.retries = supervisor.summary().retries;
  m.shard_attempts = supervisor.summary().shard_attempts;
  m.records = sink.records();
  m.checksum = sink.checksum();
  return m;
}

struct StageSeconds {
  double seconds = 0.0;      ///< histogram sum (shard stages: across workers)
  std::uint64_t spans = 0;   ///< timed spans observed
};

struct ProfileMeasurement {
  Measurement run;
  /// Per-shard simulation. The serial path records one whole-population
  /// span per day into the same family, so this is populated at 1 thread.
  StageSeconds shard_sim;
  StageSeconds shard_merge;  ///< ordered shard merge (0 on the serial path)
  StageSeconds wal_commit;   ///< WAL day commits (fsync + marker)
};

ProfileMeasurement profile_run(tl::core::Simulator& sim, unsigned threads,
                               int days, std::uint64_t seed,
                               std::uint64_t population,
                               const std::filesystem::path& wal_dir) {
  using namespace tl;
  // A fresh registry per measurement: the stage sums cover exactly this run.
  // Installing it bumps the obs epoch, so the engine re-resolves its handles
  // at run() start; a fresh WAL directory per run because the log only
  // commits days in increasing order and each run restarts at day 0.
  obs::MetricsRegistry registry;
  obs::ScopedGlobalRegistry install{&registry};

  std::filesystem::remove_all(wal_dir);
  telemetry::RecordLog::Options opt;
  opt.directory = wal_dir.string();
  telemetry::RecordLog log{io::StdioFileSystem::instance(), opt};
  telemetry::DurableRecordSink durable{log};
  sim.attach_durable_log(&durable);

  ProfileMeasurement m;
  m.run = timed_run(sim, threads, days, seed, population);
  sim.remove_sink(&durable);

  const obs::MetricsSnapshot snap = registry.scrape();
  const auto stage = [&snap](const char* name) {
    StageSeconds s;
    if (const auto* h = snap.find_histogram(name)) {
      s.seconds = h->sum;
      s.spans = h->count;
    }
    return s;
  };
  m.shard_sim = stage("tl_exec_shard_sim_seconds");
  m.shard_merge = stage("tl_exec_shard_merge_seconds");
  m.wal_commit = stage("tl_wal_commit_seconds");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  bool smoke = false;
  bool resilience = false;
  bool obs_mode = false;
  bool profile = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--resilience") == 0) {
      resilience = true;
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      obs_mode = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_throughput [--smoke] [--resilience] [--obs]"
                   " [--profile] [--out PATH]\n";
      return 2;
    }
  }
  if (out_path.empty()) {
    out_path = resilience ? "BENCH_resilience.json"
                          : obs_mode ? "BENCH_obs.json" : "BENCH_throughput.json";
  }

  // Fixed mid-size config: big enough that the per-UE-day work dominates
  // the merge AND the per-day fixed costs (pool spin-up, shard dispatch) —
  // 20k UEs x 2 days left those fixed costs visible in the 2-thread arm.
  // Three days also means days 2..N run on the warm reused shard slab, the
  // steady state a four-week study actually lives in.
  core::StudyConfig cfg = bench::bench_config();
  cfg.days = static_cast<int>(bench::env_double("TL_BENCH_DAYS", smoke ? 1 : 3));
  cfg.finalize();
  cfg.population.count = static_cast<std::uint32_t>(
      bench::env_double("TL_BENCH_UES", smoke ? 2'000 : 40'000));
  const int sweep_reps = std::max(
      1, static_cast<int>(bench::env_double("TL_BENCH_REPS", smoke ? 2 : 1)));

  const unsigned hw = exec::ThreadPool::resolve_threads(0);
  std::vector<unsigned> sweep{1, 2, 4};
  if (hw > 4) sweep.push_back(hw);
  if (smoke) sweep = {1, 2};

  std::cerr << "[bench_throughput] world: scale=" << cfg.scale
            << " ues=" << cfg.population.count << " days=" << cfg.days
            << " seed=" << cfg.seed << " hw_threads=" << hw << "\n";
  core::Simulator sim{cfg};

  if (obs_mode) {
    const unsigned threads = smoke ? 2 : std::min(hw, 4u);
    const int reps =
        std::max(1, static_cast<int>(bench::env_double("TL_BENCH_OBS_REPS",
                                                       smoke ? 5 : 5)));
    const double gate_pct = bench::env_double("TL_BENCH_OBS_GATE_PCT", 2.0);

    // One registry shared by every metrics-on run; the handles the engine
    // resolves stay valid across arm switches because the registry outlives
    // them all. Arms interleave with alternating order (off/on, on/off, ...)
    // so monotone machine drift hits both arms equally, and each arm keeps
    // its best (min-wall) run — the standard noise filter.
    obs::MetricsRegistry registry;
    std::vector<Measurement> off_runs, on_runs;
    const auto run_off = [&] {
      off_runs.push_back(
          timed_run(sim, threads, cfg.days, cfg.seed, cfg.population.count));
    };
    const auto run_on = [&] {
      obs::ScopedGlobalRegistry install{&registry};
      on_runs.push_back(
          timed_run(sim, threads, cfg.days, cfg.seed, cfg.population.count));
    };
    for (int rep = 0; rep < reps; ++rep) {
      if (rep % 2 == 0) {
        run_off();
        run_on();
      } else {
        run_on();
        run_off();
      }
      std::cerr << "[bench_throughput] rep=" << rep
                << " off_ms=" << off_runs.back().wall_ms
                << " on_ms=" << on_runs.back().wall_ms << "\n";
    }

    // Gate 1: metrics are observational only — every run of both arms must
    // produce the identical record stream.
    for (const auto* arm : {&off_runs, &on_runs}) {
      for (const auto& m : *arm) {
        if (m.records != off_runs.front().records ||
            m.checksum != off_runs.front().checksum) {
          std::cerr << "[bench_throughput] FAIL: metrics-"
                    << (arm == &on_runs ? "on" : "off")
                    << " stream differs (records " << m.records << " vs "
                    << off_runs.front().records << ", crc " << std::hex
                    << m.checksum << " vs " << off_runs.front().checksum
                    << std::dec << ")\n";
          return 1;
        }
      }
    }

    const auto best = [](const std::vector<Measurement>& runs) {
      const Measurement* b = &runs.front();
      for (const auto& m : runs) {
        if (m.wall_ms < b->wall_ms) b = &m;
      }
      return *b;
    };
    const Measurement best_off = best(off_runs);
    const Measurement best_on = best(on_runs);
    const double overhead_pct =
        best_off.wall_ms > 0 ? (best_on.wall_ms / best_off.wall_ms - 1.0) * 100.0
                             : 0.0;

    // The registry now holds reps full runs' worth of instrumentation;
    // surface the headline totals through the monitor API the report tools
    // use, as a smoke test of the whole chain.
    obs::StudyMonitor monitor{registry};
    const obs::StudyMonitor::Snapshot snap = monitor.snapshot();

    std::cerr << "[bench_throughput] obs overhead: off=" << best_off.wall_ms
              << "ms on=" << best_on.wall_ms << "ms (" << overhead_pct
              << "%, gate " << gate_pct << "%)\n";

    std::ofstream json{out_path, std::ios::trunc};
    json << "{\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"gate_pct\": " << gate_pct << ",\n"
         << "  \"overhead_pct\": " << overhead_pct << ",\n"
         << "  \"off\": {\"best_wall_ms\": " << best_off.wall_ms
         << ", \"ue_days_per_sec\": "
         << static_cast<std::uint64_t>(best_off.ue_days_per_sec) << "},\n"
         << "  \"on\": {\"best_wall_ms\": " << best_on.wall_ms
         << ", \"ue_days_per_sec\": "
         << static_cast<std::uint64_t>(best_on.ue_days_per_sec) << "},\n"
         << "  \"records\": " << best_off.records << ",\n"
         << "  \"checksum\": " << best_off.checksum << ",\n"
         << "  \"metrics\": {\"days\": " << snap.days
         << ", \"ue_days\": " << snap.ue_days
         << ", \"records\": " << snap.records << "},\n"
         << "  \"seed\": " << cfg.seed << "\n"
         << "}\n";
    if (!json) {
      std::cerr << "[bench_throughput] FAIL: could not write " << out_path << "\n";
      return 1;
    }
    std::cerr << "[bench_throughput] wrote " << out_path << "\n";

    // Counter cross-check: the on-arm ran `reps` times over the full
    // population — the registry's totals must agree exactly with the stream.
    const std::uint64_t expect_records =
        best_off.records * static_cast<std::uint64_t>(reps);
    if (snap.records != expect_records) {
      std::cerr << "[bench_throughput] FAIL: tl_sim_records_total="
                << snap.records << ", expected " << expect_records << "\n";
      return 1;
    }

    if (overhead_pct > gate_pct) {
      std::cerr << "[bench_throughput] FAIL: observability overhead "
                << overhead_pct << "% exceeds the " << gate_pct << "% gate\n";
      return 1;
    }
    return 0;
  }

  if (resilience) {
    const unsigned threads = smoke ? 2 : std::min(hw, 4u);
    std::vector<StormMeasurement> storms;
    for (const double rate : {0.0, 0.01, 0.05}) {
      const StormMeasurement m =
          storm_run(sim, threads, rate, cfg.days, cfg.seed, cfg.population.count);
      std::cerr << "[bench_throughput] fault_rate=" << rate << " wall_ms=" << m.wall_ms
                << " ue_days/s=" << m.ue_days_per_sec << " retries=" << m.retries
                << " attempts=" << m.shard_attempts << " crc=" << std::hex
                << m.checksum << std::dec << "\n";
      storms.push_back(m);
    }
    for (const auto& m : storms) {
      if (m.records != storms.front().records ||
          m.checksum != storms.front().checksum) {
        std::cerr << "[bench_throughput] FAIL: stream at fault_rate=" << m.fault_rate
                  << " differs from the fault-free supervised run\n";
        return 1;
      }
    }
    std::ofstream json{out_path, std::ios::trunc};
    json << "[\n";
    for (std::size_t i = 0; i < storms.size(); ++i) {
      const auto& m = storms[i];
      const double overhead =
          storms.front().wall_ms > 0 ? m.wall_ms / storms.front().wall_ms - 1.0 : 0.0;
      json << "  {\"fault_rate\": " << m.fault_rate << ", \"threads\": " << threads
           << ", \"ue_days_per_sec\": " << static_cast<std::uint64_t>(m.ue_days_per_sec)
           << ", \"wall_ms\": " << static_cast<std::uint64_t>(m.wall_ms)
           << ", \"retries\": " << m.retries
           << ", \"shard_attempts\": " << m.shard_attempts
           << ", \"retry_overhead_pct\": " << static_cast<std::int64_t>(overhead * 100)
           << ", \"seed\": " << cfg.seed << "}" << (i + 1 < storms.size() ? "," : "")
           << "\n";
    }
    json << "]\n";
    if (!json) {
      std::cerr << "[bench_throughput] FAIL: could not write " << out_path << "\n";
      return 1;
    }
    std::cerr << "[bench_throughput] wrote " << out_path << "\n";
    return 0;
  }

  if (profile) {
    const std::filesystem::path wal_dir =
        std::filesystem::temp_directory_path() / "tl_bench_profile_wal";
    std::vector<ProfileMeasurement> profs;
    for (const unsigned threads : sweep) {
      const ProfileMeasurement p = profile_run(sim, threads, cfg.days, cfg.seed,
                                               cfg.population.count, wal_dir);
      std::cerr << "[bench_throughput] threads=" << threads
                << " wall_ms=" << p.run.wall_ms << " cpu_ms=" << p.run.cpu_ms
                << " shard_sim_s=" << p.shard_sim.seconds
                << " shard_merge_s=" << p.shard_merge.seconds
                << " wal_commit_s=" << p.wal_commit.seconds << " crc=" << std::hex
                << p.run.checksum << std::dec << "\n";
      profs.push_back(p);
    }
    std::filesystem::remove_all(wal_dir);

    // Determinism gate, as in the plain sweep: profiling must observe the
    // same stream at every thread count.
    for (const auto& p : profs) {
      if (p.run.records != profs.front().run.records ||
          p.run.checksum != profs.front().run.checksum) {
        std::cerr << "[bench_throughput] FAIL: stream at " << p.run.threads
                  << " threads differs from serial\n";
        return 1;
      }
    }

    std::ofstream json{out_path, std::ios::trunc};
    const Measurement& serial = profs.front().run;
    json << "[\n";
    for (std::size_t i = 0; i < profs.size(); ++i) {
      const auto& p = profs[i];
      const double wall_s = p.run.wall_ms / 1000.0;
      // Stage span sums accumulate across concurrent workers, so they are
      // aggregate busy seconds, NOT wall time — the old single
      // "accounted_wall_pct" summed them against wall and reported >100% on
      // oversubscribed machines. Report the aggregate and the wall-normalized
      // shares separately: dividing the sim sum by the worker count gives the
      // ideal (perfectly balanced) wall share; merge and WAL run on the
      // coordinating thread, so their sums are already wall.
      const double aggregate_s =
          p.shard_sim.seconds + p.shard_merge.seconds + p.wal_commit.seconds;
      const double sim_wall_s =
          p.run.threads > 0
              ? p.shard_sim.seconds / static_cast<double>(p.run.threads)
              : p.shard_sim.seconds;
      const auto share_pct = [wall_s](double s) {
        return wall_s > 0 ? s / wall_s * 100.0 : 0.0;
      };
      // The serial path books one whole-population sim span per day; sharded
      // arms book one per shard per day. shards_per_day makes the two arm
      // shapes comparable instead of leaving an 8-vs-1 span-count mystery.
      const std::uint64_t shards_per_day =
          cfg.days > 0 ? p.shard_sim.spans / static_cast<std::uint64_t>(cfg.days)
                       : p.shard_sim.spans;
      const double speedup =
          p.run.wall_ms > 0 ? serial.wall_ms / p.run.wall_ms : 0.0;
      const double inflation =
          serial.cpu_ms > 0 ? p.run.cpu_ms / serial.cpu_ms : 1.0;
      json << "  {\"threads\": " << p.run.threads
           << ", \"hw_threads\": " << hw
           << ", \"wall_ms\": " << static_cast<std::uint64_t>(p.run.wall_ms)
           << ", \"cpu_ms\": " << static_cast<std::uint64_t>(p.run.cpu_ms)
           << ", \"ue_days_per_sec\": "
           << static_cast<std::uint64_t>(p.run.ue_days_per_sec)
           << ", \"speedup_vs_serial\": " << speedup
           << ", \"cpu_inflation_vs_serial\": " << inflation
           << ", \"stages\": {"
           << "\"shard_sim_s\": " << p.shard_sim.seconds
           << ", \"shard_sim_spans\": " << p.shard_sim.spans
           << ", \"shards_per_day\": " << shards_per_day
           << ", \"shard_merge_s\": " << p.shard_merge.seconds
           << ", \"shard_merge_spans\": " << p.shard_merge.spans
           << ", \"wal_commit_s\": " << p.wal_commit.seconds
           << ", \"wal_commit_spans\": " << p.wal_commit.spans
           << ", \"aggregate_s\": " << aggregate_s
           << ", \"sim_wall_share_pct\": " << share_pct(sim_wall_s)
           << ", \"merge_wall_share_pct\": " << share_pct(p.shard_merge.seconds)
           << ", \"wal_wall_share_pct\": " << share_pct(p.wal_commit.seconds)
           << "}"
           << ", \"records\": " << p.run.records << ", \"seed\": " << cfg.seed
           << "}" << (i + 1 < profs.size() ? "," : "") << "\n";
    }
    json << "]\n";
    if (!json) {
      std::cerr << "[bench_throughput] FAIL: could not write " << out_path << "\n";
      return 1;
    }
    std::cerr << "[bench_throughput] wrote " << out_path << "\n";

    std::vector<Measurement> runs;
    for (const auto& p : profs) runs.push_back(p.run);
    return check_scaling_gates(runs, smoke, hw) ? 0 : 1;
  }

  std::vector<Measurement> results;
  for (const unsigned threads : sweep) {
    const Measurement m = best_timed_run(sim, threads, cfg.days, cfg.seed,
                                         cfg.population.count, sweep_reps);
    std::cerr << "[bench_throughput] threads=" << m.threads << " wall_ms=" << m.wall_ms
              << " cpu_ms=" << m.cpu_ms << " ue_days/s=" << m.ue_days_per_sec
              << " records/s=" << m.records_per_sec << " records=" << m.records
              << " crc=" << std::hex << m.checksum << std::dec << "\n";
    results.push_back(m);
  }

  // Determinism gate: every thread count must produce the same stream.
  for (const auto& m : results) {
    if (m.records != results.front().records ||
        m.checksum != results.front().checksum) {
      std::cerr << "[bench_throughput] FAIL: stream at " << m.threads
                << " threads differs from serial (records " << m.records << " vs "
                << results.front().records << ")\n";
      return 1;
    }
  }

  std::ofstream json{out_path, std::ios::trunc};
  json << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    const double speedup =
        m.wall_ms > 0 ? results.front().wall_ms / m.wall_ms : 0.0;
    const double inflation = results.front().cpu_ms > 0
                                 ? m.cpu_ms / results.front().cpu_ms
                                 : 1.0;
    json << "  {\"threads\": " << m.threads << ", \"hw_threads\": " << hw
         << ", \"ue_days_per_sec\": "
         << static_cast<std::uint64_t>(m.ue_days_per_sec)
         << ", \"records_per_sec\": " << static_cast<std::uint64_t>(m.records_per_sec)
         << ", \"wall_ms\": " << static_cast<std::uint64_t>(m.wall_ms)
         << ", \"cpu_ms\": " << static_cast<std::uint64_t>(m.cpu_ms)
         << ", \"speedup_vs_serial\": " << speedup
         << ", \"cpu_inflation_vs_serial\": " << inflation
         << ", \"seed\": " << cfg.seed << "}" << (i + 1 < results.size() ? "," : "")
         << "\n";
  }
  json << "]\n";
  if (!json) {
    std::cerr << "[bench_throughput] FAIL: could not write " << out_path << "\n";
    return 1;
  }
  std::cerr << "[bench_throughput] wrote " << out_path << "\n";

  return check_scaling_gates(results, smoke, hw) ? 0 : 1;
}
