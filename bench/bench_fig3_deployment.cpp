// Fig. 3a — Deployment evolution 2009-2023 per RAT.
// Fig. 3b — Average daily RAT use (time share) + UL/DL traffic shares.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_world.hpp"
#include "core/usage_model.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig3a() {
  const auto& w = bench::static_world();
  const auto evolution = w.sim->deployment().evolution(2009, 2023);

  util::print_section(std::cout, "Fig. 3a: Deployment evolution (sector counts per RAT)");
  util::TextTable t{{"Year", "2G", "3G", "4G", "5G-NR", "Total", "2G%", "3G%", "4G%", "5G%"}};
  for (const auto& yc : evolution) {
    const double total = static_cast<double>(yc.total());
    t.add_row({std::to_string(yc.year), std::to_string(yc.by_rat[0]),
               std::to_string(yc.by_rat[1]), std::to_string(yc.by_rat[2]),
               std::to_string(yc.by_rat[3]), std::to_string(yc.total()),
               util::TextTable::pct(yc.by_rat[0] / total, 1),
               util::TextTable::pct(yc.by_rat[1] / total, 1),
               util::TextTable::pct(yc.by_rat[2] / total, 1),
               util::TextTable::pct(yc.by_rat[3] / total, 1)});
  }
  t.print(std::cout);
  const double growth = static_cast<double>(evolution.back().total()) /
                        static_cast<double>(evolution[9].total());
  std::cout << "2018->2023 growth: x" << util::TextTable::num(growth, 2)
            << "  (paper: ~+59% over the last 5 years)\n"
            << "End-of-2023 shares, paper: 2G ~18% / 3G ~18% / 4G ~55% / 5G 8.4%\n";
}

void print_fig3b() {
  const auto& w = bench::static_world();
  const core::UsageModel usage{w.sim->population(), w.sim->coverage()};
  const auto r = usage.compute(w.config.days);

  util::print_section(std::cout, "Fig. 3b: Average daily RAT use");
  util::TextTable t{{"RAT", "Time share (paper)", "Time share (measured)", "min..max",
                     "UL share (paper)", "UL (measured)", "DL share (paper)",
                     "DL (measured)"}};
  const char* names[3] = {"2G", "3G", "4G/5G-NSA"};
  const char* paper_time[3] = {"8.9%", "8.9%", "~82%"};
  const char* paper_ul[3] = {"", "5.23% (2G+3G)", "94.77%"};
  const char* paper_dl[3] = {"", "2.07% (2G+3G)", "97.93%"};
  for (int rat = 0; rat < 3; ++rat) {
    t.add_row({names[rat], paper_time[rat], util::TextTable::pct(r.time_share[rat], 1),
               util::TextTable::pct(r.time_share_min[rat], 1) + ".." +
                   util::TextTable::pct(r.time_share_max[rat], 1),
               paper_ul[rat], util::TextTable::pct(r.uplink_share[rat], 2),
               paper_dl[rat], util::TextTable::pct(r.downlink_share[rat], 2)});
  }
  t.print(std::cout);
  std::cout << "Legacy (2G+3G) UL share: "
            << util::TextTable::pct(r.uplink_share[0] + r.uplink_share[1], 2)
            << " (paper 5.23%), DL share: "
            << util::TextTable::pct(r.downlink_share[0] + r.downlink_share[1], 2)
            << " (paper 2.07%)\n";
}

void BM_DeploymentBuild(benchmark::State& state) {
  const auto& w = bench::static_world();
  topology::DeploymentConfig cfg = w.config.deployment;
  for (auto _ : state) {
    auto dep = topology::Deployment::build(w.sim->country(), cfg);
    benchmark::DoNotOptimize(dep.live_sector_count());
  }
}
BENCHMARK(BM_DeploymentBuild);

void BM_EvolutionScan(benchmark::State& state) {
  const auto& w = bench::static_world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.sim->deployment().evolution(2009, 2023).size());
  }
}
BENCHMARK(BM_EvolutionScan);

}  // namespace

int main(int argc, char** argv) {
  print_fig3a();
  print_fig3b();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
