#pragma once

// Shared printing of regression results in the paper's table format.

#include <iostream>

#include "analysis/linear_model.hpp"
#include "util/table.hpp"

namespace tl::bench {

inline void print_model(std::ostream& os, const analysis::LinearModel& model) {
  util::TextTable t{{"Feature", "Coeff.", "Std Err", "t value", "Pr(>|t|)", "95% CI"}};
  for (const auto& term : model.terms) {
    t.add_row({term.name, util::TextTable::num(term.coefficient, 3),
               util::TextTable::num(term.std_error, 5),
               util::TextTable::num(term.t_value, 1),
               term.p_value < 1e-12 ? "~0" : util::TextTable::num(term.p_value, 6),
               util::TextTable::num(term.ci_lo, 2) + ", " +
                   util::TextTable::num(term.ci_hi, 2)});
  }
  t.print(os);
  os << "N = " << model.n << ", RMSE = " << util::TextTable::num(model.rmse, 3)
     << ", R^2 = " << util::TextTable::num(model.r_squared, 4)
     << ", AIC = " << util::TextTable::num(model.aic, 0) << "\n";
}

inline void print_quantile_fit(std::ostream& os, const analysis::QuantileFit& fit) {
  util::TextTable t{{"Feature; tau", "Coeff.", "Std Err", "t value", "Pr(>|t|)"}};
  for (const auto& term : fit.terms) {
    t.add_row({term.name + "; tau=" + util::TextTable::num(fit.tau, 1),
               util::TextTable::num(term.coefficient, 3),
               util::TextTable::num(term.std_error, 5),
               util::TextTable::num(term.t_value, 1),
               term.p_value < 1e-12 ? "~0" : util::TextTable::num(term.p_value, 6)});
  }
  t.print(os);
}

}  // namespace tl::bench
