// Overload benchmark for the resource governor.
//
// Streams the same synthetic WAL through two serve-mode arms:
//
//   ungoverned  no MemoryBudget installed — the baseline footprint and
//               ingest rate, and the reference tallies;
//   governed    a MemoryBudget whose pressure plan clamps the budget far
//               below the ungoverned steady state mid-run, forcing the
//               degradation ladder (sketch-only, then sampled).
//
// Gates (exit 1 on violation):
//   - zero allocation failures in the governed arm;
//   - the clamp produced explicit degradation events (never silent);
//   - shedding worked: the governed arm's accounted aggregate bytes end
//     below the unclamped steady state;
//   - national tallies identical across arms (detail shed, data kept);
//   - RSS stays flat after warmup in BOTH arms (slack below).
//
// Writes BENCH_pressure.json for cross-PR tracking.
//
//   $ bench_pressure [--smoke] [--out PATH]
//
// Scale knobs: TL_BENCH_PRESSURE_DAYS, TL_BENCH_PRESSURE_RECORDS (per day).
// The RSS gate is Linux-only (/proc/self/status VmRSS); elsewhere the bench
// reports without gating.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "govern/governor.hpp"
#include "io/file.hpp"
#include "serve/wal_tailer.hpp"
#include "telemetry/record_log.hpp"
#include "util/sim_time.hpp"

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Deterministic synthetic record with enough sector/district cardinality
/// that the maps the ladder sheds are a real fraction of the footprint.
tl::telemetry::HandoverRecord make_record(int day, std::uint32_t i) {
  tl::telemetry::HandoverRecord r;
  r.timestamp = static_cast<tl::util::TimestampMs>(day) * tl::util::kMsPerDay +
                (i % 86'000'000u);
  r.success = (i % 23) != 0;
  r.duration_ms = 20.0f + static_cast<float>((i * 37 + day * 11) % 900);
  r.anon_user_id = 0x9035ULL + i;
  r.source_sector = (i * 131 + day) % 30'000;
  r.target_sector = (i + 7) % 2'000;
  r.district = 1 + (i * 17) % 4'000;
  r.vendor = static_cast<tl::topology::Vendor>(i % 4);
  r.target_rat = static_cast<tl::topology::ObservedRat>(i % 3);
  return r;
}

std::uint64_t rss_kb() {
#ifdef __linux__
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
#endif
  return 0;
}

struct ArmResult {
  double steady_rate = 0;
  std::uint64_t rss_after_warmup = 0;
  std::uint64_t rss_final = 0;
  std::uint64_t total_records = 0;
  std::uint64_t total_failures = 0;
  std::uint64_t approximate_bytes = 0;
  std::uint64_t peak_accounted = 0;
  std::uint64_t allocation_failures = 0;
  std::size_t degradation_events = 0;
  std::size_t state_bytes = 0;
  const char* final_level = "exact";
};

/// One full arm: writes the stream day by day, tails it, measures.
ArmResult run_arm(const std::string& root, int days, std::uint32_t per_day,
                  int warmup_days, tl::govern::MemoryBudget* governor) {
  using namespace tl;
  std::filesystem::remove_all(root);
  auto& real = io::StdioFileSystem::instance();
  govern::ScopedGlobalGovernor install{governor};

  telemetry::RecordLog::Options wal_opt;
  wal_opt.directory = root;
  wal_opt.max_segment_bytes = 8ull << 20;
  telemetry::RecordLog log{real, wal_opt};
  log.open();

  serve::WalTailer::Options opt;
  opt.wal_directory = root;
  opt.checkpoint_path = root + "/serve.ckpt";
  opt.window_days = 4;
  opt.sketch_k = 128;
  opt.sample_modulus = 8;
  opt.checkpoint_every_days = 1;
  opt.retention = true;
  serve::WalTailer tailer{real, opt};
  tailer.open();

  ArmResult result;
  std::vector<double> rates;
  for (int day = 0; day < days; ++day) {
    for (std::uint32_t i = 0; i < per_day; ++i) log.append(make_record(day, i));
    log.commit_day(day, {});

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t delivered = 0;
    while (true) {
      const serve::WalTailer::PollResult r = tailer.poll();
      delivered += r.records_delivered;
      if (r.state == telemetry::TailState::kClean) break;
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (day >= warmup_days && wall_s > 0) {
      rates.push_back(static_cast<double>(delivered) / wall_s);
    }
    if (day == warmup_days - 1) result.rss_after_warmup = rss_kb();
  }
  std::sort(rates.begin(), rates.end());
  result.steady_rate = rates.empty() ? 0 : rates[rates.size() / 2];
  result.rss_final = rss_kb();
  result.total_records = tailer.aggregates().total_records();
  result.total_failures = tailer.aggregates().total_failures();
  result.approximate_bytes = tailer.aggregates().approximate_bytes();
  result.degradation_events = tailer.aggregates().degradation_events().size();
  result.final_level = serve::to_string(tailer.aggregates().level());
  if (governor != nullptr) {
    result.peak_accounted = governor->peak_bytes();
    result.allocation_failures = governor->allocation_failures();
  }
  std::vector<std::uint8_t> state;
  tailer.aggregates().serialize(state);
  result.state_bytes = state.size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  bool smoke = false;
  std::string out_path = "BENCH_pressure.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_pressure [--smoke] [--out PATH]\n";
      return 2;
    }
  }

  const int days = static_cast<int>(
      env_double("TL_BENCH_PRESSURE_DAYS", smoke ? 8 : 14));
  const std::uint32_t per_day = static_cast<std::uint32_t>(
      env_double("TL_BENCH_PRESSURE_RECORDS", smoke ? 30'000 : 150'000));
  const int warmup_days = 3;
  const std::uint64_t rss_slack_kb = 16 * 1024;

  const std::string root =
      (std::filesystem::temp_directory_path() / "tl_bench_pressure").string();

  std::cerr << "[bench_pressure] days=" << days << " records/day=" << per_day
            << "\n[bench_pressure] arm 1/2: ungoverned baseline...\n";
  const ArmResult baseline =
      run_arm(root + "/ungoverned", days, per_day, warmup_days, nullptr);

  // The governed arm: base budget comfortably above the observed steady
  // state, clamped to a third of it after warmup — deep enough past the
  // critical threshold that the ladder must reach sampling.
  const std::uint64_t steady = baseline.approximate_bytes;
  govern::MemoryBudget::Options gov_opt;
  gov_opt.budget_bytes = steady * 2;
  govern::MemoryBudget governor{gov_opt};
  govern::PressurePlan plan;
  plan.add(static_cast<std::uint64_t>(warmup_days), steady / 3);
  governor.set_plan(plan);

  std::cerr << "[bench_pressure] steady aggregate footprint: " << steady
            << " bytes\n[bench_pressure] arm 2/2: governed, budget clamped to "
            << steady / 3 << " bytes at day " << warmup_days << "...\n";
  const ArmResult governed =
      run_arm(root + "/governed", days, per_day, warmup_days, &governor);

  const double overhead =
      baseline.steady_rate > 0
          ? 1.0 - governed.steady_rate / baseline.steady_rate
          : 0.0;
  std::cerr << "[bench_pressure] ingest: ungoverned "
            << static_cast<std::uint64_t>(baseline.steady_rate)
            << "/s, governed "
            << static_cast<std::uint64_t>(governed.steady_rate)
            << "/s (overhead " << overhead * 100 << "%)\n"
            << "[bench_pressure] governed: " << governed.degradation_events
            << " degradation events, final level " << governed.final_level
            << ", accounted bytes " << governed.approximate_bytes << " (peak "
            << governed.peak_accounted << "), alloc failures "
            << governed.allocation_failures << "\n"
            << "[bench_pressure] rss ungoverned "
            << baseline.rss_after_warmup << " -> " << baseline.rss_final
            << " kB, governed " << governed.rss_after_warmup << " -> "
            << governed.rss_final << " kB\n";

  // --- gates -----------------------------------------------------------------
  bool ok = true;
  const auto gate = [&](bool pass, const char* what) {
    if (!pass) {
      std::cerr << "[bench_pressure] FAIL: " << what << "\n";
      ok = false;
    }
    return pass;
  };
  gate(governed.allocation_failures == 0, "governed arm hit allocation failures");
  gate(governed.degradation_events > 0,
       "budget clamp produced no degradation events (silent overload)");
  gate(governed.approximate_bytes < steady,
       "shedding did not reduce the accounted aggregate footprint");
  gate(governed.total_records == baseline.total_records &&
           governed.total_failures == baseline.total_failures,
       "national tallies diverged between arms (silent drops)");
  const bool rss_measured =
      baseline.rss_after_warmup > 0 && governed.rss_after_warmup > 0;
  const bool rss_flat =
      !rss_measured ||
      (baseline.rss_final <= baseline.rss_after_warmup + rss_slack_kb &&
       governed.rss_final <= governed.rss_after_warmup + rss_slack_kb);
  gate(rss_flat, "RSS grew past the post-warmup baseline");

  std::ofstream json{out_path, std::ios::trunc};
  json << "{\n"
       << "  \"days\": " << days << ",\n"
       << "  \"records_per_day\": " << per_day << ",\n"
       << "  \"ungoverned_records_per_sec\": "
       << static_cast<std::uint64_t>(baseline.steady_rate) << ",\n"
       << "  \"governed_records_per_sec\": "
       << static_cast<std::uint64_t>(governed.steady_rate) << ",\n"
       << "  \"governance_overhead\": " << overhead << ",\n"
       << "  \"steady_aggregate_bytes\": " << steady << ",\n"
       << "  \"clamped_budget_bytes\": " << steady / 3 << ",\n"
       << "  \"governed_aggregate_bytes\": " << governed.approximate_bytes
       << ",\n"
       << "  \"governed_peak_accounted_bytes\": " << governed.peak_accounted
       << ",\n"
       << "  \"degradation_events\": " << governed.degradation_events << ",\n"
       << "  \"final_level\": \"" << governed.final_level << "\",\n"
       << "  \"allocation_failures\": " << governed.allocation_failures
       << ",\n"
       << "  \"state_bytes_governed\": " << governed.state_bytes << ",\n"
       << "  \"state_bytes_ungoverned\": " << baseline.state_bytes << ",\n"
       << "  \"rss_ungoverned_warmup_kb\": " << baseline.rss_after_warmup
       << ",\n"
       << "  \"rss_ungoverned_final_kb\": " << baseline.rss_final << ",\n"
       << "  \"rss_governed_warmup_kb\": " << governed.rss_after_warmup
       << ",\n"
       << "  \"rss_governed_final_kb\": " << governed.rss_final << ",\n"
       << "  \"rss_flat\": " << (rss_flat ? "true" : "false") << ",\n"
       << "  \"gates_ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "[bench_pressure] FAIL: could not write " << out_path << "\n";
    return 1;
  }
  std::cerr << "[bench_pressure] wrote " << out_path << "\n";
  std::filesystem::remove_all(root);
  return ok ? 0 : 1;
}
