// Fig. 13 — HOF rate vs binned device-level mobility metrics (log-scale
// bins), with the UE ECDF per bin. Paper: ~zero HOF for 87% of UEs (<=100
// sectors/day); up to 0.4% at pct-75 beyond 100 sectors or 100 km gyration.

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/histogram.hpp"
#include "analysis/summary.hpp"
#include "bench_world.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_panel(const std::vector<double>& metric, const std::vector<double>& rates,
                 double lo, double hi, const char* title) {
  auto hist = analysis::Histogram::logarithmic(lo, hi, 8);
  hist.add_all(metric);
  const auto groups = analysis::group_by_bins(hist, metric, rates);

  util::print_section(std::cout, title);
  util::TextTable t{{"Bin", "UE-days", "ECDF", "HOF rate median", "HOF rate p75"}};
  std::size_t cumulative = hist.underflow();
  const double total = static_cast<double>(metric.size());
  for (std::size_t b = 0; b < groups.size(); ++b) {
    cumulative += hist.bins()[b].count;
    if (groups[b].empty()) {
      t.add_row({hist.label(b), "0", util::TextTable::pct(cumulative / total, 1), "-",
                 "-"});
      continue;
    }
    t.add_row({hist.label(b), std::to_string(groups[b].size()),
               util::TextTable::pct(cumulative / total, 1),
               util::TextTable::pct(analysis::median(groups[b]), 3),
               util::TextTable::pct(analysis::quantile(groups[b], 0.75), 3)});
  }
  t.print(std::cout);
}

void print_fig13() {
  const auto& w = bench::simulated_world();
  std::vector<double> sectors, gyration, rates;
  for (const auto& row : w.ue_days.rows()) {
    if (row.handovers == 0) continue;
    sectors.push_back(std::max<double>(row.distinct_sectors, 0.51));
    gyration.push_back(std::max<double>(row.radius_of_gyration_km, 0.011));
    rates.push_back(row.hof_rate());
  }
  print_panel(sectors, rates, 0.5, 2'000.0,
              "Fig. 13a: HOF rate vs distinct sectors per day");
  print_panel(gyration, rates, 0.01, 1'000.0,
              "Fig. 13b: HOF rate vs radius of gyration (km)");

  // Headline: share of UE-days at <=100 sectors with ~zero median HOF rate.
  std::size_t below = 0, below_zero = 0;
  for (std::size_t i = 0; i < sectors.size(); ++i) {
    if (sectors[i] <= 100.0) {
      ++below;
      if (rates[i] == 0.0) ++below_zero;
    }
  }
  std::cout << "UE-days with <=100 sectors (paper: 87% of UEs): "
            << util::TextTable::pct(below / static_cast<double>(sectors.size()), 1)
            << "; of those with zero HOF rate: "
            << util::TextTable::pct(below_zero / std::max<double>(below, 1), 1) << "\n";
}

void BM_GroupByBins(benchmark::State& state) {
  const auto& w = bench::simulated_world();
  std::vector<double> metric, rates;
  for (const auto& row : w.ue_days.rows()) {
    metric.push_back(std::max<double>(row.distinct_sectors, 0.51));
    rates.push_back(row.hof_rate());
  }
  auto hist = analysis::Histogram::logarithmic(0.5, 2'000.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::group_by_bins(hist, metric, rates).size());
  }
}
BENCHMARK(BM_GroupByBins);

}  // namespace

int main(int argc, char** argv) {
  print_fig13();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
