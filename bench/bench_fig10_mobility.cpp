// Fig. 10 — Mobility metrics across device types (ECDFs): smartphones
// median 22 visited sectors / 2.7 km gyration; M2M 1 sector / 0.0 km with a
// 20.1 km p95 tail; feature phones 3 sectors / 0.9 km.

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/summary.hpp"
#include "bench_world.hpp"
#include "mobility/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_fig10() {
  const auto& w = bench::simulated_world();

  std::array<std::vector<double>, 3> sectors, gyration;
  for (const auto& row : w.ue_days.rows()) {
    const auto t = static_cast<std::size_t>(row.device_type);
    sectors[t].push_back(row.distinct_sectors);
    gyration[t].push_back(row.radius_of_gyration_km);
  }

  util::print_section(std::cout, "Fig. 10a: distinct sectors per UE-day");
  util::TextTable t{{"Device type", "Paper median", "Measured median", "p75", "p95"}};
  const char* paper_sectors[3] = {"22", "1", "3"};
  for (const auto type : devices::kAllDeviceTypes) {
    const auto i = static_cast<std::size_t>(type);
    t.add_row({std::string{devices::to_string(type)}, paper_sectors[i],
               util::TextTable::num(analysis::median(sectors[i]), 1),
               util::TextTable::num(analysis::quantile(sectors[i], 0.75), 1),
               util::TextTable::num(analysis::quantile(sectors[i], 0.95), 1)});
  }
  t.print(std::cout);

  util::print_section(std::cout, "Fig. 10b: radius of gyration (km) per UE-day");
  util::TextTable g{{"Device type", "Paper median", "Measured median", "Paper p95",
                     "Measured p95"}};
  const char* paper_gyr_median[3] = {"2.7 km", "0.0 km", "0.9 km"};
  const char* paper_gyr_p95[3] = {"-", "20.1 km", "-"};
  for (const auto type : devices::kAllDeviceTypes) {
    const auto i = static_cast<std::size_t>(type);
    g.add_row({std::string{devices::to_string(type)}, paper_gyr_median[i],
               util::TextTable::num(analysis::median(gyration[i]), 2) + " km",
               paper_gyr_p95[i],
               util::TextTable::num(analysis::quantile(gyration[i], 0.95), 1) + " km"});
  }
  g.print(std::cout);

  util::print_section(std::cout, "Fig. 10: ECDF series (gyration km at F)");
  util::TextTable e{{"F", "Smartphone", "M2M/IoT", "Feature phone"}};
  for (const double p : {0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    std::vector<std::string> row{util::TextTable::num(p, 2)};
    for (const auto type : devices::kAllDeviceTypes) {
      row.push_back(util::TextTable::num(
          analysis::quantile(gyration[static_cast<std::size_t>(type)], p), 2));
    }
    e.add_row(row);
  }
  e.print(std::cout);
}

void BM_RadiusOfGyration(benchmark::State& state) {
  std::vector<util::GeoPoint> points;
  std::vector<double> dwell;
  util::Rng rng{3};
  for (int i = 0; i < 64; ++i) {
    points.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
    dwell.push_back(rng.uniform(1.0, 100.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobility::radius_of_gyration(points, dwell));
  }
}
BENCHMARK(BM_RadiusOfGyration);

}  // namespace

int main(int argc, char** argv) {
  print_fig10();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
