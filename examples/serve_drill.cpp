// Serve drill: run a study through the durable WAL, then stand up the
// serve-mode tailer over it — rolling-window reports, checkpoints, segment
// retention — and kill the tailer at seeded I/O points until it converges.
// The verdict is strict: after every kill/recover schedule the tailer's
// serialized aggregates must be byte-identical to a batch oracle that read
// the whole log in one uninterrupted pass, and a cold restart from the
// checkpoint plus the retained segments must reproduce the same bytes.
//
//   $ serve_drill [schedules] [seed]
//
// Demonstrates src/serve end to end: RecordLog tail-follow, StreamAggregates
// with mergeable quantile sketches, WalTailer checkpoint/retention, all on
// top of a FaultyFileSystem injecting crashes and transient EIOs.

#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint_codec.hpp"
#include "core/simulator.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "serve/stream_aggregates.hpp"
#include "serve/wal_tailer.hpp"
#include "telemetry/record_log.hpp"
#include "topology/vendor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

void copy_wal(const std::string& from, const std::string& to) {
  std::filesystem::create_directories(to);
  auto& fsys = tl::io::StdioFileSystem::instance();
  for (const auto& name : fsys.list(from, "wal-")) {
    std::filesystem::copy_file(from + "/" + name, to + "/" + name,
                               std::filesystem::copy_options::overwrite_existing);
  }
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  int schedules = 5;
  std::uint64_t seed = 20260808;
  if (argc > 1) {
    const auto parsed = util::parse_uint(argv[1], 1, 100000);
    if (!parsed) {
      std::cerr << "error: bad schedules: " << argv[1] << "\n"
                << "usage: " << argv[0] << " [schedules 1..100000] [seed]\n";
      return 2;
    }
    schedules = static_cast<int>(*parsed);
  }
  if (argc > 2) {
    const auto parsed = util::parse_uint(argv[2]);
    if (!parsed) {
      std::cerr << "error: bad seed: " << argv[2] << "\n"
                << "usage: " << argv[0] << " [schedules 1..100000] [seed]\n";
      return 2;
    }
    seed = *parsed;
  }

  const std::string root =
      (std::filesystem::temp_directory_path() / "tl_serve_drill").string();
  std::filesystem::remove_all(root);
  auto& real = io::StdioFileSystem::instance();

  // --- phase 1: a study writes the WAL, day by day --------------------------
  core::StudyConfig config = core::StudyConfig::test_scale();
  config.days = 6;
  config.population.count = 300;

  telemetry::RecordLog::Options wal_opt;
  wal_opt.directory = root + "/wal";
  wal_opt.max_segment_bytes = 24 * 1024;
  wal_opt.write_chunk_bytes = 1024;

  std::cout << "Building country and deployment...\n";
  core::Simulator sim{config};
  core::DayCheckpoint day0;
  day0.seed = config.seed;
  {
    telemetry::RecordLog log{real, wal_opt};
    telemetry::DurableRecordSink sink{log};
    log.open();
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    std::cout << "Writer: " << log.committed_records() << " records over "
              << config.days << " days, "
              << real.list(wal_opt.directory, "wal-").size() << " segments\n";
  }

  // --- the batch oracle: one uninterrupted pass ------------------------------
  serve::StreamAggregates::Options agg_opt;
  agg_opt.window_days = 4;
  agg_opt.sketch_k = 128;
  serve::StreamAggregates oracle{agg_opt};
  telemetry::RecordLog::replay(real, wal_opt.directory, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);

  const auto make_options = [&](const std::string& dir) {
    serve::WalTailer::Options o;
    o.wal_directory = dir;
    o.checkpoint_path = dir + "/serve.ckpt";
    o.window_days = agg_opt.window_days;
    o.sketch_k = agg_opt.sketch_k;
    o.checkpoint_every_days = 1;
    o.retention = true;
    o.max_days_per_poll = 2;
    return o;
  };

  // --- phase 2: fault-free tailer pass (also sizes the chaos horizon) -------
  std::uint64_t horizon = 0;
  {
    const std::string dir = root + "/dry";
    copy_wal(wal_opt.directory, dir);
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    serve::WalTailer tailer{ffs, make_options(dir)};
    tailer.open();
    while (tailer.poll().state != telemetry::TailState::kClean) {
    }
    horizon = ffs.ops();
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    if (bytes != oracle_bytes) {
      std::cerr << "FAIL: fault-free tail disagrees with the batch oracle\n";
      return 1;
    }

    const auto report = tailer.report();
    util::print_section(std::cout, "Rolling window report (last " +
                                       std::to_string(report.days) + " days)");
    std::cout << "days " << report.first_day << ".." << report.last_day << ": "
              << report.handovers << " HOs, HOF rate "
              << fmt(report.hof_rate() * 100) << "%\n"
              << "signaling time p50/p90/p99: " << fmt(report.p50_ms) << "/"
              << fmt(report.p90_ms) << "/" << fmt(report.p99_ms)
              << " ms (rank error <= " << fmt(report.quantile_rank_error)
              << ", " << report.sketch_count << " samples in sketch)\n";
    util::TextTable vendors{{"Vendor", "HOs", "HOF %"}};
    for (std::size_t v = 0; v < report.by_vendor.size(); ++v) {
      const auto& t = report.by_vendor[v];
      vendors.add_row({std::string(topology::to_string(
                           static_cast<topology::Vendor>(v))),
                       std::to_string(t.handovers), fmt(t.hof_rate() * 100)});
    }
    vendors.print(std::cout);
    std::cout << "tailer state: " << tailer.aggregates().stored_sketch_items()
              << " sketch items retained, " << horizon << " storage ops\n";
  }

  // --- phase 3: kill the tailer until it stops mattering --------------------
  util::TextTable table{{"Schedule", "Kills", "IO aborts", "Attempts",
                         "Segments retired", "Converged", "Restart"}};
  int survived = 0;
  for (int s = 0; s < schedules; ++s) {
    const std::string dir = root + "/drill_" + std::to_string(s);
    copy_wal(wal_opt.directory, dir);
    const serve::WalTailer::Options opt = make_options(dir);
    util::Rng meta = util::Rng::derive(seed, static_cast<std::uint64_t>(s));
    int kills = 0, io_aborts = 0, attempts = 0;
    std::uint64_t retired = 0;
    bool complete = false;
    bool converged = false;
    while (!complete && attempts < 64) {
      ++attempts;
      io::IoFaultPlan plan;
      if (attempts == 1 || !meta.chance(0.4)) {
        plan = io::IoFaultPlan::chaos(meta(), horizon + 8,
                                      s % 3 == 0 ? 0.02 : 0.0);
      }
      io::FaultyFileSystem ffs{real, plan, meta()};
      serve::WalTailer tailer{ffs, opt};
      try {
        tailer.open();
        while (true) {
          const serve::WalTailer::PollResult r = tailer.poll();
          retired += r.segments_retired;
          if (r.state == telemetry::TailState::kClean) break;
        }
        complete = true;
        std::vector<std::uint8_t> bytes;
        tailer.aggregates().serialize(bytes);
        converged = bytes == oracle_bytes;
      } catch (const io::SimulatedCrash&) {
        ++kills;
      } catch (const io::IoError&) {
        ++io_aborts;
      }
    }
    // Restart proof: checkpoint + retained segments alone, no tailer memory.
    bool restart_ok = false;
    if (complete) {
      serve::WalTailer tailer{real, opt};
      tailer.open();
      const auto r = tailer.poll();
      std::vector<std::uint8_t> bytes;
      tailer.aggregates().serialize(bytes);
      restart_ok = r.state == telemetry::TailState::kClean &&
                   r.days_delivered == 0 && bytes == oracle_bytes;
    }
    survived += (converged && restart_ok) ? 1 : 0;
    table.add_row({std::to_string(s), std::to_string(kills),
                   std::to_string(io_aborts), std::to_string(attempts),
                   std::to_string(retired), converged ? "yes" : "NO",
                   restart_ok ? "yes" : "NO"});
  }

  util::print_section(std::cout, "Kill-the-tailer drill");
  table.print(std::cout);
  std::cout << "\n" << survived << "/" << schedules
            << " schedules converged bit-for-bit to the batch oracle\n";
  std::filesystem::remove_all(root);
  return survived == schedules ? 0 : 1;
}
