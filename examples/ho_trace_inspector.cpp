// HO trace inspector — drives the handover state machine directly and
// prints the full Fig. 1 signaling ladder for successful and failing
// procedures, the way a core-network engineer reads an S1AP capture.
//
// Exercises the micro-level API: MobilityConfig + A3 evaluation picks the
// target, then HandoverProcedure emits the message sequence.
//
//   $ ho_trace_inspector [seed]

#include <cstdlib>
#include <iostream>

#include "core_network/duration_model.hpp"
#include "core_network/entities.hpp"
#include "core_network/failure_causes.hpp"
#include "core_network/failure_model.hpp"
#include "core_network/ho_state_machine.hpp"
#include "ran/measurement.hpp"
#include "ran/propagation.hpp"
#include "util/table.hpp"

namespace {

using namespace tl;

void print_trace(const corenet::MessageTrace& trace) {
  util::TextTable t{{"t (ms)", "Message", "src sector", "dst sector"}};
  const util::TimestampMs t0 = trace.empty() ? 0 : trace.front().time;
  for (const auto& m : trace) {
    t.add_row({std::to_string(m.time - t0), std::string{to_string(m.type)},
               std::to_string(m.source_sector), std::to_string(m.target_sector)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 7;
  util::Rng rng{seed};

  // --- Radio side: a UE moving away from its serving cell. ------------------
  util::print_section(std::cout, "Step 1: measurement report & A3 evaluation");
  const ran::MobilityConfig mobility_config;
  const ran::RadioParams params = ran::radio_params(topology::Rat::kG4);
  ran::MeasurementReport report;
  report.serving = {101, ran::rsrp_dbm(params, 1.4, rng), -13.0};
  report.neighbors = {{202, ran::rsrp_dbm(params, 0.4, rng), -11.0},
                      {203, ran::rsrp_dbm(params, 2.2, rng), -15.0}};
  std::cout << "serving sector 101: "
            << util::TextTable::num(report.serving.rsrp_dbm, 1) << " dBm\n";
  for (const auto& n : report.neighbors) {
    std::cout << "neighbor " << n.sector << ": " << util::TextTable::num(n.rsrp_dbm, 1)
              << " dBm\n";
  }
  ran::CellMeasurement best;
  const auto event = ran::evaluate_report(mobility_config, report, &best);
  std::cout << "trigger: "
            << (event == ran::TriggerEvent::kA3
                    ? "A3 (neighbor offset-better)"
                    : event == ran::TriggerEvent::kA2 ? "A2 (serving weak)" : "none")
            << ", target sector " << best.sector << "\n";

  // --- Core side: run the procedure. ----------------------------------------
  corenet::FailureModel failure_model;
  corenet::DurationModel durations;
  corenet::CauseCatalog causes;
  corenet::HandoverProcedure procedure{failure_model, durations, causes};
  corenet::CoreNetwork core;

  devices::Ue ue;
  ue.id = 1;
  ue.anon_id = 0xfeed;
  ue.srvcc_subscribed = true;
  ue.hof_multiplier = 1.0f;

  corenet::HoAttempt attempt;
  attempt.ue = &ue;
  attempt.source_sector = 101;
  attempt.target_sector = best.sector;
  attempt.time = util::SimCalendar::at(0, 8.5);
  attempt.target_rat = topology::ObservedRat::kG45Nsa;

  util::print_section(std::cout, "Step 2: successful intra 4G/5G-NSA handover");
  ue.hof_multiplier = 0.0f;  // force success for the demo ladder
  corenet::MessageTrace trace;
  auto outcome = procedure.execute(attempt, core, rng, &trace);
  std::cout << "result: " << (outcome.success ? "success" : "failure") << " in "
            << util::TextTable::num(outcome.duration_ms, 1) << " ms\n";
  print_trace(trace);

  util::print_section(std::cout, "Step 3: SRVCC handover without subscription (Cause #6)");
  ue.hof_multiplier = 1.0f;
  ue.srvcc_subscribed = false;
  attempt.target_rat = topology::ObservedRat::kG3;
  attempt.srvcc = true;
  trace.clear();
  outcome = procedure.execute(attempt, core, rng, &trace);
  std::cout << "result: failure, cause: " << causes.description(outcome.cause) << "\n";
  print_trace(trace);

  util::print_section(std::cout, "Step 4: a batch of fallback HOs under target overload");
  ue.srvcc_subscribed = true;
  attempt.srvcc = false;
  attempt.target_overload = 0.5;  // saturated target sector
  int failures = 0;
  corenet::CauseId last_cause = corenet::kCauseNone;
  for (int i = 0; i < 400; ++i) {
    trace.clear();
    outcome = procedure.execute(attempt, core, rng, &trace);
    if (!outcome.success) {
      ++failures;
      last_cause = outcome.cause;
    }
  }
  std::cout << failures << "/400 failed; last failure cause: "
            << causes.description(last_cause) << "\n";

  util::print_section(std::cout, "Core entity counters");
  util::TextTable t{{"Entity", "procedures", "failures"}};
  const auto& mme = core.mme(geo::Region::kCapital);
  const auto& sgsn = core.sgsn(geo::Region::kCapital);
  const auto& msc = core.msc(geo::Region::kCapital);
  t.add_row({"MME (Capital)", std::to_string(mme.handovers.procedures),
             std::to_string(mme.handovers.failures)});
  t.add_row({"SGSN (Capital)", std::to_string(sgsn.relocations.procedures),
             std::to_string(sgsn.relocations.failures)});
  t.add_row({"MSC (Capital, SRVCC)", std::to_string(msc.srvcc.procedures),
             std::to_string(msc.srvcc.failures)});
  t.print(std::cout);
  return 0;
}
