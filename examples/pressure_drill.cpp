// Pressure drill — the overload counterpart to crash_drill: feed the
// serve-mode aggregates a stream whose sector/district universe keeps
// growing (the unbounded-cardinality terms a real national feed has) and
// watch what happens when memory runs out.
//
//   $ pressure_drill [--records N] [--days D] [--budget-mb M] [--ungoverned]
//
// Governed (default): a govern::MemoryBudget with an M-MiB budget is
// consulted at every day seal, exactly like the WalTailer does it — the
// accountant tracks StreamAggregates::approximate_bytes(), and the
// hysteretic pressure level maps onto the degradation ladder (Steady ->
// exact, Elevated -> sketch-only, Critical -> sampled). The drill completes
// inside the budget, prints the rolling report plus the explicit
// degradation journal, and exits 0. National tallies stay exact.
//
// --ungoverned: no governor, no ladder. Run it under a virtual-memory
// ulimit (ulimit -v) and the growing maps eventually throw bad_alloc; the
// drill classifies it through the supervision taxonomy (kResourceExhausted)
// and exits 3 — the CI pressure job asserts exactly that pairing: the
// governed run survives the same ulimit the ungoverned run dies under.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "govern/governor.hpp"
#include "serve/stream_aggregates.hpp"
#include "supervise/status.hpp"
#include "util/cli.hpp"
#include "util/sim_time.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: " << argv0
            << " [--records N] [--days D] [--budget-mb M] [--ungoverned]\n"
            << "  --records   1..10^9  total records to stream (default 2M)\n"
            << "  --days      1..10^6  day seals across the stream (default 20)\n"
            << "  --budget-mb 1..10^6  memory budget, MiB (default 64)\n"
            << "  --ungoverned         no governor: overload becomes bad_alloc\n";
  std::exit(2);
}

/// Synthetic record with an open-ended sector/district universe: index i is
/// unique across the whole stream, so the exact per-sector and per-district
/// maps grow linearly until shed (or until the allocator gives up).
tl::telemetry::HandoverRecord make_record(int day, std::uint64_t i) {
  tl::telemetry::HandoverRecord r;
  r.timestamp = static_cast<tl::util::TimestampMs>(day) * tl::util::kMsPerDay +
                (i % 86'000'000u);
  r.success = (i % 19) != 0;
  r.duration_ms = 20.0f + static_cast<float>((i * 37 + day * 11) % 900);
  r.anon_user_id = 0xD311ULL + i;
  r.source_sector = static_cast<std::uint32_t>(i);       // never repeats
  r.target_sector = static_cast<std::uint32_t>(i % 997);
  r.district = static_cast<std::uint32_t>(1 + i % 15'485'863);
  r.vendor = static_cast<tl::topology::Vendor>(i % 4);
  r.target_rat = static_cast<tl::topology::ObservedRat>(i % 3);
  return r;
}

/// The WalTailer's pressure-to-ladder mapping, applied at day seals.
tl::serve::DegradeLevel ladder_for(tl::govern::PressureLevel level) {
  switch (level) {
    case tl::govern::PressureLevel::kSteady:
      return tl::serve::DegradeLevel::kExact;
    case tl::govern::PressureLevel::kElevated:
      return tl::serve::DegradeLevel::kSketchOnly;
    case tl::govern::PressureLevel::kCritical:
      return tl::serve::DegradeLevel::kSampled;
  }
  return tl::serve::DegradeLevel::kSampled;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  std::uint64_t records = 2'000'000;
  std::uint64_t days = 20;
  std::uint64_t budget_mb = 64;
  bool governed = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_uint(argv[++i], 1, 1'000'000'000);
      if (!parsed) usage(argv[0], std::string{"bad --records: "} + argv[i]);
      records = *parsed;
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_uint(argv[++i], 1, 1'000'000);
      if (!parsed) usage(argv[0], std::string{"bad --days: "} + argv[i]);
      days = *parsed;
    } else if (std::strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_uint(argv[++i], 1, 1'000'000);
      if (!parsed) usage(argv[0], std::string{"bad --budget-mb: "} + argv[i]);
      budget_mb = *parsed;
    } else if (std::strcmp(argv[i], "--ungoverned") == 0) {
      governed = false;
    } else {
      usage(argv[0], std::string{"unknown argument: "} + argv[i]);
    }
  }
  const std::uint64_t per_day = (records + days - 1) / days;

  govern::MemoryBudget::Options gov_opt;
  gov_opt.budget_bytes = budget_mb << 20;
  govern::MemoryBudget governor{gov_opt};
  govern::ScopedGlobalGovernor install{governed ? &governor : nullptr};
  govern::Accountant account = govern::account("serve_aggregates");

  serve::StreamAggregates::Options agg_opt;
  agg_opt.window_days = 4;
  agg_opt.sketch_k = 128;
  agg_opt.sample_modulus = 8;
  serve::StreamAggregates aggs{agg_opt};

  std::cout << "Pressure drill: " << records << " records over " << days
            << " day(s), "
            << (governed ? "governed (budget " + std::to_string(budget_mb) +
                               " MiB)"
                         : "UNGOVERNED")
            << "\n";

  std::uint64_t accounted = 0;
  std::uint64_t fed = 0;
  try {
    for (std::uint64_t day = 0; day < days && fed < records; ++day) {
      for (std::uint64_t i = 0; i < per_day && fed < records; ++i, ++fed) {
        aggs.consume(make_record(static_cast<int>(day), fed));
      }
      aggs.on_day_end(static_cast<int>(day));
      if (governed) {
        // The WalTailer's per-seal consult, spelled out: sync the
        // accountant, tick the injection clock, map pressure to the ladder.
        const std::uint64_t bytes = aggs.approximate_bytes();
        if (bytes >= accounted) {
          account.add(bytes - accounted);
        } else {
          account.sub(accounted - bytes);
        }
        accounted = bytes;
        governor.tick();
        serve::StreamAggregates::DegradeDecision decision;
        decision.level = ladder_for(governor.level());
        decision.used_bytes = governor.used_bytes();
        decision.budget_bytes = governor.budget_bytes();
        aggs.apply_degrade(decision, static_cast<int>(day) + 1);
        std::cout << "  day " << day << ": accounted " << (bytes >> 20)
                  << " MiB, pressure "
                  << govern::to_string(governor.level()) << ", ladder "
                  << serve::to_string(aggs.level()) << "\n";
      }
    }
  } catch (...) {
    const Status status = supervise::classify_exception(std::current_exception());
    std::cerr << "overload: " << status.to_string() << " after " << fed
              << " records\n";
    if (status.code() == StatusCode::kResourceExhausted) {
      std::cerr << "(an OOM kill, made classifiable — run governed to survive "
                   "this budget)\n";
      return 3;
    }
    return 1;
  }

  const auto report = aggs.report();
  util::print_section(std::cout, "Rolling window report");
  util::TextTable table{{"Metric", "Value"}};
  table.add_row({"records (lifetime, exact)", std::to_string(aggs.total_records())});
  table.add_row({"failures (lifetime, exact)", std::to_string(aggs.total_failures())});
  table.add_row({"window HOs", std::to_string(report.handovers)});
  table.add_row({"p50 signaling", std::to_string(report.p50_ms) + " ms"});
  table.add_row({"quantile rank error", std::to_string(report.quantile_rank_error)});
  table.add_row({"sketch samples", std::to_string(report.sketch_count)});
  table.add_row({"degraded window days", std::to_string(report.degraded_days)});
  table.add_row({"max sample modulus", std::to_string(report.max_sample_modulus)});
  table.print(std::cout);

  if (!aggs.degradation_events().empty()) {
    util::print_section(std::cout, "Degradation journal (explicit, certified)");
    util::TextTable journal{{"Day", "From", "To", "Used MiB", "Budget MiB",
                             "Modulus", "Shed keys"}};
    for (const auto& event : aggs.degradation_events()) {
      journal.add_row(
          {std::to_string(event.effective_day),
           serve::to_string(event.from), serve::to_string(event.to),
           std::to_string(event.used_bytes >> 20),
           std::to_string(event.budget_bytes >> 20),
           std::to_string(event.sample_modulus),
           std::to_string(event.shed_district_keys + event.shed_sector_keys)});
    }
    journal.print(std::cout);
  }

  if (governed) {
    std::cout << "\nCompleted inside the budget: detail was shed (explicitly, "
                 "above), data was not —\nlifetime tallies are exact and the "
                 "quantiles carry a certified rank-error bound\nover the "
                 "declared sample basis.\n";
  } else {
    std::cout << "\nCompleted without a governor — this machine had enough "
                 "memory. Re-run under\n  ulimit -v  to see the OOM this "
                 "drill is about, or governed to see it absorbed.\n";
  }
  return 0;
}
