// Crash drill: run a study through the durable record log while a seeded
// fault injector kills the "process" at arbitrary I/O points, then recover
// and resume until the study completes — and prove the surviving record
// stream is byte-for-byte what an uninterrupted run would have produced.
//
//   $ crash_drill [schedules] [seed]
//
// Demonstrates the durability subsystem end to end: RecordLog +
// DurableRecordSink + Simulator::attach_durable_log on top of a
// FaultyFileSystem, with recovery reports printed for every kill.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint_codec.hpp"
#include "core/simulator.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "telemetry/record_log.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::string log_bytes(const std::string& dir) {
  std::string all;
  auto& fsys = tl::io::StdioFileSystem::instance();
  for (const auto& name : fsys.list(dir, "wal-")) {
    std::ifstream is{dir + "/" + name, std::ios::binary};
    std::ostringstream os;
    os << is.rdbuf();
    all += os.str();
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  int schedules = 5;
  std::uint64_t seed = 20240129;
  if (argc > 1) {
    const auto parsed = util::parse_uint(argv[1], 1, 100000);
    if (!parsed) {
      std::cerr << "error: bad schedules: " << argv[1] << "\n"
                << "usage: " << argv[0] << " [schedules 1..100000] [seed]\n";
      return 2;
    }
    schedules = static_cast<int>(*parsed);
  }
  if (argc > 2) {
    const auto parsed = util::parse_uint(argv[2]);
    if (!parsed) {
      std::cerr << "error: bad seed: " << argv[2] << "\n"
                << "usage: " << argv[0] << " [schedules 1..100000] [seed]\n";
      return 2;
    }
    seed = *parsed;
  }

  core::StudyConfig config = core::StudyConfig::test_scale();
  config.days = 3;
  config.population.count = 400;

  const std::string root =
      (std::filesystem::temp_directory_path() / "tl_crash_drill").string();
  std::filesystem::remove_all(root);
  auto& real = io::StdioFileSystem::instance();

  telemetry::RecordLog::Options opt;
  opt.max_segment_bytes = 24 * 1024;
  opt.write_chunk_bytes = 1024;

  std::cout << "Building country and deployment...\n";
  core::Simulator sim{config};
  core::DayCheckpoint day0;
  day0.seed = config.seed;

  // Reference run: no faults, just the durable pipeline.
  std::uint64_t horizon = 0;
  opt.directory = root + "/reference";
  {
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    telemetry::RecordLog log{ffs, opt};
    telemetry::DurableRecordSink sink{log};
    log.open();
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    horizon = ffs.ops();
    std::cout << "Reference: " << log.committed_records() << " records, "
              << real.list(opt.directory, "wal-").size() << " segments, "
              << horizon << " storage ops\n";
  }
  const std::string reference = log_bytes(opt.directory);

  util::TextTable table{{"Schedule", "Kills", "Dropped bytes", "Dropped records",
                         "Attempts", "Byte-identical"}};
  int survived = 0;
  for (int s = 0; s < schedules; ++s) {
    opt.directory = root + "/drill_" + std::to_string(s);
    util::Rng meta = util::Rng::derive(seed, static_cast<std::uint64_t>(s));
    int kills = 0, attempts = 0;
    std::uint64_t dropped_bytes = 0, dropped_records = 0;
    bool complete = false;
    while (!complete && attempts < 64) {
      ++attempts;
      io::IoFaultPlan plan;
      if (attempts == 1 || !meta.chance(0.4)) {
        plan = io::IoFaultPlan::chaos(meta(), horizon + 8);
      }
      io::FaultyFileSystem ffs{real, plan, meta()};
      telemetry::RecordLog log{ffs, opt};
      telemetry::DurableRecordSink sink{log};
      try {
        const auto report = log.open();
        dropped_bytes += report.dropped_bytes;
        dropped_records += report.dropped_records;
        sim.restore(day0);
        sim.attach_durable_log(&sink);
        sim.run();
        complete = true;
      } catch (const io::SimulatedCrash&) {
        ++kills;
      } catch (const io::IoError& e) {
        std::cout << "  schedule " << s << ": commit aborted (" << e.what() << ")\n";
      }
      sim.remove_sink(&sink);
    }
    const bool identical = complete && log_bytes(opt.directory) == reference;
    survived += identical ? 1 : 0;
    table.add_row({std::to_string(s), std::to_string(kills),
                   std::to_string(dropped_bytes), std::to_string(dropped_records),
                   std::to_string(attempts), identical ? "yes" : "NO"});
  }

  util::print_section(std::cout, "Crash drill results");
  table.print(std::cout);
  std::cout << "\n" << survived << "/" << schedules
            << " schedules recovered to a byte-identical record stream\n";
  std::filesystem::remove_all(root);
  return survived == schedules ? 0 : 1;
}
