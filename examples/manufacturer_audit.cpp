// Manufacturer audit — flags device manufacturers whose handover behaviour
// deviates from their district peers, the way §5.3 surfaces KVD (+600% HOF)
// and Simcom (+293% HOs). An MNO runs this to open vendor-quality tickets.
//
//   $ manufacturer_audit [scale] [days]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/summary.hpp"
#include "core/report.hpp"
#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tl;

  core::StudyConfig config = core::StudyConfig::bench_scale();
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  config.days = argc > 2 ? std::atoi(argv[2]) : 3;
  config.finalize();
  config.population.count = 30'000;

  std::cout << "Manufacturer audit: simulating...\n";
  core::Simulator sim{config};
  telemetry::DistrictAggregator districts{sim.country().districts().size(),
                                          sim.catalog().manufacturers().size()};
  sim.add_sink(&districts);
  sim.run();

  const auto result = core::manufacturer_normalized(sim, districts, 10);

  // Audit rule of thumb: flag makers whose district-normalized behaviour is
  // more than 50% above same-type peers.
  struct Finding {
    std::string maker;
    double ho_ratio;
    double hof_ratio;
    const char* verdict;
  };
  std::vector<Finding> findings;
  for (const auto& row : result.rows) {
    const char* verdict = nullptr;
    if (row.median_hof_rate > 2.0) {
      verdict = "CRITICAL: failure rate far above peers";
    } else if (row.median_hof_rate > 1.5) {
      verdict = "WARN: elevated failure rate";
    } else if (row.median_hos > 1.5) {
      verdict = "WARN: excessive HO signaling";
    } else if (row.median_hof_rate < 0.8) {
      verdict = "NOTE: best-in-class failure rate";
    }
    if (verdict != nullptr) {
      findings.push_back({row.name, row.median_hos, row.median_hof_rate, verdict});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.hof_ratio > b.hof_ratio; });

  util::print_section(std::cout, "Audit findings (district-normalized, within type)");
  util::TextTable t{{"Manufacturer", "HOs vs peers", "HOF rate vs peers", "Verdict"}};
  for (const auto& f : findings) {
    t.add_row({f.maker, util::TextTable::num(f.ho_ratio, 2) + "x",
               util::TextTable::num(f.hof_ratio, 2) + "x", f.verdict});
  }
  t.print(std::cout);

  util::print_section(std::cout, "Baseline: top smartphone manufacturers");
  util::TextTable base{{"Manufacturer", "HOs vs peers", "HOF rate vs peers"}};
  for (const std::size_t idx : result.top5_by_share) {
    const auto& row = result.rows[idx];
    base.add_row({row.name, util::TextTable::num(row.median_hos, 2) + "x",
                  util::TextTable::num(row.median_hof_rate, 2) + "x"});
  }
  base.print(std::cout);

  std::cout << "\nPaper reference: Apple +4% HOs / +8% HOF, Google -27% HOF,\n"
               "KVD & HMD up to +600% HOF, Simcom +293% HOs per UE.\n";
  return 0;
}
