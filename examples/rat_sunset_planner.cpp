// RAT sunset planner — the paper's headline operational use case (§8):
// "monitor and report activity in the legacy RATs, so as to design
// realistic strategies towards fully decommissioning them."
//
// This tool runs the simulator, then ranks districts by how safely the 3G
// layer could be switched off there: districts whose 4G/5G-capable devices
// almost never fall back are sunset-ready; districts where a large share of
// HOs still lands on 3G (or whose population is dominated by 3G-only
// devices) need 4G densification first.
//
//   $ rat_sunset_planner [scale] [days]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tl;

  core::StudyConfig config = core::StudyConfig::bench_scale();
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  config.days = argc > 2 ? std::atoi(argv[2]) : 3;
  config.finalize();
  config.population.count = 25'000;

  std::cout << "RAT sunset planner: simulating " << config.days << " days at scale "
            << config.scale << "...\n";
  core::Simulator sim{config};
  telemetry::DistrictAggregator districts{sim.country().districts().size(),
                                          sim.catalog().manufacturers().size()};
  sim.add_sink(&districts);
  sim.run();

  // Legacy-only devices per district: they lose service entirely if 2G/3G
  // disappears, independent of HO statistics.
  std::vector<std::uint32_t> legacy_ues(sim.country().districts().size(), 0);
  std::vector<std::uint32_t> total_ues(sim.country().districts().size(), 0);
  for (const auto& ue : sim.population().ues()) {
    ++total_ues[ue.home_district];
    if (ue.rat_support <= topology::RatSupport::kUpTo3G) ++legacy_ues[ue.home_district];
  }

  struct Row {
    geo::DistrictId id;
    double fallback_share;   // share of observed HOs landing on 3G/2G
    double legacy_ue_share;  // share of resident UEs that are 3G-at-best
    std::uint64_t handovers;
  };
  std::vector<Row> rows;
  for (const auto& d : sim.country().districts()) {
    const auto& tally = districts.district(d.id);
    if (tally.handovers < 200 || total_ues[d.id] == 0) continue;  // too little signal
    Row r;
    r.id = d.id;
    r.handovers = tally.handovers;
    r.fallback_share =
        static_cast<double>(tally.by_target[0] + tally.by_target[1]) /
        static_cast<double>(tally.handovers);
    r.legacy_ue_share =
        static_cast<double>(legacy_ues[d.id]) / static_cast<double>(total_ues[d.id]);
    rows.push_back(r);
  }

  // Sunset readiness: low fallback AND low legacy-device dependence.
  const auto score = [](const Row& r) {
    return r.fallback_share + 0.5 * r.legacy_ue_share;
  };
  std::sort(rows.begin(), rows.end(),
            [&](const Row& a, const Row& b) { return score(a) < score(b); });

  const auto print_rows = [&](const char* title, std::size_t from, std::size_t count) {
    util::print_section(std::cout, title);
    util::TextTable t{{"District", "HOs to 3G/2G", "legacy-only UEs", "observed HOs",
                       "readiness score"}};
    for (std::size_t i = from; i < rows.size() && i < from + count; ++i) {
      const Row& r = rows[i];
      t.add_row({sim.country().district(r.id).name,
                 util::TextTable::pct(r.fallback_share, 2),
                 util::TextTable::pct(r.legacy_ue_share, 1), std::to_string(r.handovers),
                 util::TextTable::num(score(r), 3)});
    }
    t.print(std::cout);
  };

  print_rows("Sunset-ready districts (switch 3G off here first)", 0, 10);
  print_rows("Districts needing 4G densification before any sunset",
             rows.size() > 10 ? rows.size() - 10 : 0, 10);

  std::cout << "\nDistricts analyzed: " << rows.size()
            << " (of " << sim.country().districts().size() << "; the rest had <200 "
            << "observed HOs at this scale)\n";
  return 0;
}
