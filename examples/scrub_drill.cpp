// Scrub drill: end-to-end storage-integrity demonstration on a mirrored
// record WAL. A study writes the log (every sealed segment mirrored at seal
// time), then seeded bit rot is injected and the drill proves the three
// layers of src/telemetry/scrub.hpp in order:
//
//   1. Detection  — LogScrubber finds every injected defect (a sealed
//      segment is CRC-covered on every byte, so a single flipped bit can
//      never pass).
//   2. Read-repair — with one surviving replica, LogIntegrity restores the
//      damaged copy and the repaired file's CRC32C must equal the clean
//      oracle's, byte for byte. A WalTailer over the repaired chain must
//      converge to the batch oracle's serialized aggregates.
//   3. Certified degradation — with BOTH replicas of a segment damaged, the
//      segment is quarantined; the tailer skips it, finishes in state
//      kQuarantined, and its loss ledger must account for the hole exactly:
//      records delivered + records certified lost == records written, with
//      the accounting flagged exact and persisted in the (v2) checkpoint.
//
//   $ scrub_drill [trials] [seed]
//
// Exit codes: 0 = every verdict passed; 1 = a detection, repair, or
// accounting verdict failed; 2 = bad usage.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint_codec.hpp"
#include "core/simulator.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "serve/stream_aggregates.hpp"
#include "serve/wal_tailer.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/scrub.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

void copy_dir(const std::string& from, const std::string& to) {
  std::filesystem::create_directories(to);
  auto& fsys = tl::io::StdioFileSystem::instance();
  for (const auto& name : fsys.list(from, "wal-")) {
    std::filesystem::copy_file(from + "/" + name, to + "/" + name,
                               std::filesystem::copy_options::overwrite_existing);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  int trials = 12;
  std::uint64_t seed = 20260808;
  if (argc > 1) {
    const auto parsed = util::parse_uint(argv[1], 1, 100000);
    if (!parsed) {
      std::cerr << "error: bad trials: " << argv[1] << "\n"
                << "usage: " << argv[0] << " [trials 1..100000] [seed]\n";
      return 2;
    }
    trials = static_cast<int>(*parsed);
  }
  if (argc > 2) {
    const auto parsed = util::parse_uint(argv[2]);
    if (!parsed) {
      std::cerr << "error: bad seed: " << argv[2] << "\n"
                << "usage: " << argv[0] << " [trials 1..100000] [seed]\n";
      return 2;
    }
    seed = *parsed;
  }

  const std::string root =
      (std::filesystem::temp_directory_path() / "tl_scrub_drill").string();
  std::filesystem::remove_all(root);
  auto& real = io::StdioFileSystem::instance();

  // --- phase 1: a study writes the mirrored WAL -----------------------------
  core::StudyConfig config = core::StudyConfig::test_scale();
  config.days = 6;
  config.population.count = 300;

  telemetry::RecordLog::Options wal_opt;
  wal_opt.directory = root + "/wal";
  wal_opt.mirror_directory = root + "/mirror";
  wal_opt.max_segment_bytes = 24 * 1024;
  wal_opt.write_chunk_bytes = 1024;

  std::cout << "Building country and deployment...\n";
  core::Simulator sim{config};
  core::DayCheckpoint day0;
  day0.seed = config.seed;
  std::uint64_t total_records = 0;
  {
    telemetry::RecordLog log{real, wal_opt};
    telemetry::DurableRecordSink sink{log};
    log.open();
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    total_records = log.committed_records();
  }
  const std::vector<std::string> segments = real.list(wal_opt.directory, "wal-");
  const std::size_t sealed = segments.size() - 1;  // tail is never mirrored
  std::cout << "Writer: " << total_records << " records over " << config.days
            << " days, " << segments.size() << " segments (" << sealed
            << " sealed + mirrored)\n";
  if (sealed < 2) {
    std::cerr << "FAIL: need at least 2 sealed segments for the drill\n";
    return 1;
  }

  // Seal-time mirroring verdict + per-segment CRC oracle.
  std::vector<std::uint32_t> oracle_crc(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    oracle_crc[i] =
        telemetry::file_crc32c(real, wal_opt.directory + "/" + segments[i]);
    if (i < sealed &&
        telemetry::file_crc32c(
            real, wal_opt.mirror_directory + "/" + segments[i]) != oracle_crc[i]) {
      std::cerr << "FAIL: mirror of " << segments[i]
                << " is not byte-identical to its primary\n";
      return 1;
    }
  }

  // Batch oracle for the stream-equivalence verdicts.
  serve::StreamAggregates::Options agg_opt;
  agg_opt.window_days = 4;
  agg_opt.sketch_k = 128;
  serve::StreamAggregates oracle{agg_opt};
  telemetry::RecordLog::replay(real, wal_opt.directory, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);

  // A clean chain must scrub clean (and scrub must be free of side effects).
  telemetry::LogScrubber scrubber{
      real, {wal_opt.directory, wal_opt.mirror_directory}};
  const telemetry::ScrubReport clean_scan = scrubber.run();
  if (!clean_scan.clean()) {
    std::cerr << "FAIL: clean chain reported " << clean_scan.defects.size()
              << " defect(s)\n";
    return 1;
  }
  std::cout << "Clean scrub: " << clean_scan.segments_scanned << " segments, "
            << clean_scan.bytes_scanned << " bytes, "
            << clean_scan.records_scanned << " records verified, 0 defects\n";

  const auto make_options = [&](const std::string& dir) {
    serve::WalTailer::Options o;
    o.wal_directory = dir + "/wal";
    o.checkpoint_path = dir + "/serve.ckpt";
    o.mirror_directory = dir + "/mirror";
    o.window_days = agg_opt.window_days;
    o.sketch_k = agg_opt.sketch_k;
    o.checkpoint_every_days = 1;
    // One poll spans the whole chain, so the poll that crosses a quarantined
    // hole also finishes the stream and surfaces kQuarantined directly.
    o.max_days_per_poll = 64;
    return o;
  };
  const auto drain = [](serve::WalTailer& tailer) {
    serve::WalTailer::PollResult r;
    do {
      r = tailer.poll();
    } while (r.state == telemetry::TailState::kMore ||
             r.state == telemetry::TailState::kPending);
    return r;
  };

  // --- phase 2: single-copy bit rot -> detect, repair, verify ---------------
  util::TextTable table{{"Trial", "Copy", "Segment", "Offset", "Detected",
                         "Repaired", "CRC", "Stream"}};
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng = util::Rng::derive(seed, static_cast<std::uint64_t>(t));
    const std::string dir = root + "/single_" + std::to_string(t);
    copy_dir(wal_opt.directory, dir + "/wal");
    copy_dir(wal_opt.mirror_directory, dir + "/mirror");

    const bool hit_mirror = rng.chance(0.5);
    const std::size_t victim = rng.below(sealed);
    const std::string victim_path = dir + (hit_mirror ? "/mirror/" : "/wal/") +
                                    segments[victim];
    const std::uint64_t offset = rng.below(real.file_size(victim_path));
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << rng.below(8));
    io::inject_bit_rot(real, victim_path, offset, mask);

    telemetry::LogScrubber scrubber{real, {dir + "/wal", dir + "/mirror"}};
    const telemetry::ScrubReport report = scrubber.run();
    const bool detected = !report.clean();

    telemetry::LogIntegrity integrity{real, {dir + "/wal", dir + "/mirror"}};
    const telemetry::IntegrityReport repair = integrity.check_and_repair();
    const bool repaired = repair.fully_repaired() && repair.repaired_any();
    const bool crc_ok =
        telemetry::file_crc32c(real, victim_path) == oracle_crc[victim];

    // Stream verdict: a fresh tailer over the repaired chain must match the
    // batch oracle bit for bit (a wrong byte would change the aggregates).
    serve::WalTailer tailer{real, make_options(dir)};
    tailer.open();
    const serve::WalTailer::PollResult r = drain(tailer);
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    const bool stream_ok =
        r.state == telemetry::TailState::kClean && bytes == oracle_bytes;

    if (!(detected && repaired && crc_ok && stream_ok)) ++failures;
    table.add_row({std::to_string(t), hit_mirror ? "mirror" : "primary",
                   segments[victim], std::to_string(offset),
                   detected ? "yes" : "NO", repaired ? "yes" : "NO",
                   crc_ok ? "match" : "DIFFERS", stream_ok ? "oracle" : "NO"});
  }
  util::print_section(std::cout, "Single-copy bit rot: detect -> read-repair");
  table.print(std::cout);

  // --- phase 3: both copies damaged -> certified quarantine -----------------
  util::print_section(std::cout, "Double fault: certified quarantine");
  bool quarantine_ok = false;
  {
    util::Rng rng = util::Rng::derive(seed, 0x0ddfau);
    const std::string dir = root + "/double";
    copy_dir(wal_opt.directory, dir + "/wal");
    copy_dir(wal_opt.mirror_directory, dir + "/mirror");
    // Interior victims only (a marker anchor on both sides): a hole at the
    // chain head leaves the first lost day unknowable, and one at the end
    // stays deferred until the writer's next commit.
    std::vector<std::size_t> interior;
    for (std::size_t s = 1; s < sealed; ++s) {
      if (clean_scan.audits[s].last_day < clean_scan.last_day) {
        interior.push_back(s);
      }
    }
    if (interior.empty()) {
      std::cerr << "FAIL: no interior sealed segment to quarantine\n";
      return 1;
    }
    const std::size_t victim = interior[rng.below(interior.size())];
    for (const char* side : {"/wal/", "/mirror/"}) {
      const std::string path = dir + side + segments[victim];
      io::inject_bit_rot(real, path, rng.below(real.file_size(path)),
                         static_cast<std::uint8_t>(1u << rng.below(8)));
    }

    serve::WalTailer tailer{real, make_options(dir)};
    tailer.open();
    const serve::WalTailer::PollResult r = drain(tailer);
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    const std::uint64_t delivered = tailer.cursor().records;
    const bool accounted =
        tailer.loss_accounting_exact() &&
        delivered == total_records &&  // adopted totals span the hole
        tailer.records_lost() > 0 &&
        tailer.days_lost() > 0;

    // Checkpoint (v2) round trip: a cold restart must rehydrate the same
    // ledger and report the stream degraded without re-reading the hole.
    serve::WalTailer restart{real, make_options(dir)};
    restart.open();
    const serve::WalTailer::PollResult rr = restart.poll();
    const bool restart_ok =
        restart.quarantined_segments() == tailer.quarantined_segments() &&
        restart.records_lost() == tailer.records_lost() &&
        restart.days_lost() == tailer.days_lost() &&
        restart.loss_accounting_exact() && rr.days_delivered == 0;

    quarantine_ok = r.state == telemetry::TailState::kQuarantined &&
                    accounted && restart_ok;
    std::cout << "quarantined " << segments[victim] << ": certified "
              << tailer.records_lost() << " records / " << tailer.days_lost()
              << " day(s) lost (days " << tailer.loss_first_day() << ".."
              << tailer.loss_last_day() << "), accounting "
              << (tailer.loss_accounting_exact() ? "exact" : "INEXACT")
              << "\nstate: " << telemetry::to_string(r.state)
              << ", restart ledger " << (restart_ok ? "matches" : "DIFFERS")
              << "\n";
    if (!quarantine_ok) ++failures;
  }

  std::cout << "\n" << (trials + 1 - failures) << "/" << (trials + 1)
            << " verdicts passed\n";
  std::filesystem::remove_all(root);
  return failures == 0 ? 0 : 1;
}
