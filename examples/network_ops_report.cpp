// Daily network-operations report — the view an MNO's NOC would pull from
// this pipeline every morning: control-plane load per entity, handover
// health, ping-pong waste, QoS damage, and the worst failure causes of the
// day. Exercises the extension APIs end to end.
//
//   $ network_ops_report [scale] [days] [--threads N] [--supervised]
//                        [--fault-rate F] [--metrics-out PATH]
//
// --threads N simulates each day on N workers (0 = all hardware threads);
// every reported number is identical at any thread count.
// --supervised runs the days through the StudySupervisor (retries, watchdog
// deadlines, poison-UE quarantine) and appends a Supervision section;
// --fault-rate F (implies --supervised) additionally storms the shard tasks
// with seeded throws/EIOs/slowdowns at probability F per attempt — the
// report's numbers must not move.
// --metrics-out PATH installs a metrics registry for the run and writes the
// engine's internal telemetry (shard/day latencies, WAL volume, retry and
// quarantine pressure) as Prometheus text exposition to PATH, plus an
// Observability section to stdout. Report numbers are identical with or
// without it — metrics are observational only.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "core/control_plane.hpp"
#include "core/qos_model.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/study_monitor.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/task_fault_injector.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/pingpong.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: " << argv0
            << " [scale] [days] [--threads N] [--supervised]"
               " [--fault-rate F] [--metrics-out PATH]\n"
            << "  scale        (0, 1]   deployment scale factor\n"
            << "  days         1..366   study days to simulate\n"
            << "  --threads    0..1024  workers per day (0 = all hardware)\n"
            << "  --fault-rate [0, 1]   per-attempt shard fault probability\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  core::StudyConfig config = core::StudyConfig::bench_scale();
  bool supervised = false;
  double fault_rate = 0.0;
  std::string metrics_out;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const auto threads = util::parse_uint(argv[++i], 0, 1024);
      if (!threads) usage(argv[0], std::string{"bad --threads: "} + argv[i]);
      config.threads = static_cast<unsigned>(*threads);
    } else if (std::strcmp(argv[i], "--supervised") == 0) {
      supervised = true;
    } else if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc) {
      const auto rate = util::parse_double(argv[++i], 0.0, 1.0);
      if (!rate) usage(argv[0], std::string{"bad --fault-rate: "} + argv[i]);
      fault_rate = *rate;
      supervised = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 2) usage(argv[0], "too many positional arguments");
  config.scale = 0.01;
  config.days = 1;
  if (positional.size() > 0) {
    const auto scale = util::parse_double(positional[0], 1e-6, 1.0);
    if (!scale) usage(argv[0], std::string{"bad scale: "} + positional[0]);
    config.scale = *scale;
  }
  if (positional.size() > 1) {
    const auto days = util::parse_uint(positional[1], 1, 366);
    if (!days) usage(argv[0], std::string{"bad days: "} + positional[1]);
    config.days = static_cast<int>(*days);
  }
  config.finalize();
  config.population.count = 20'000;

  std::cout << "Simulating " << config.days << " day(s) of network operation...\n";

  // Install the registry before anything resolves obs handles; it must
  // outlive the simulator's runs, hence scope-level lifetime here.
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::ScopedGlobalRegistry> install;
  std::unique_ptr<obs::StudyMonitor> monitor;
  if (!metrics_out.empty()) {
    install = std::make_unique<obs::ScopedGlobalRegistry>(&registry);
    monitor = std::make_unique<obs::StudyMonitor>(registry);
  }

  core::Simulator sim{config};

  supervise::TaskFaultConfig storm;
  storm.seed = config.seed ^ 0x0b5;
  storm.throw_rate = fault_rate / 3;
  storm.io_error_rate = fault_rate / 3;
  storm.slow_rate = fault_rate / 3;
  storm.slow_ms = 2;
  const supervise::TaskFaultInjector injector{storm};
  std::unique_ptr<supervise::StudySupervisor> supervisor;
  if (supervised) {
    supervise::SupervisorOptions sup_opt;
    sup_opt.threads = config.threads;
    sup_opt.shard_deadline_ms = 10'000;
    if (fault_rate > 0.0) sup_opt.injector = &injector;
    supervisor = std::make_unique<supervise::StudySupervisor>(sup_opt);
    sim.set_supervisor(supervisor.get());
  }
  telemetry::PingPongDetector pingpong{10'000};
  core::QosAggregator qos;
  telemetry::CauseAggregator causes{config.days, sim.catalog().manufacturers().size()};
  telemetry::UeDayStore ue_days;
  sim.add_sink(&pingpong);
  sim.add_sink(&qos);
  sim.add_sink(&causes);
  sim.add_metrics_sink(&ue_days);
  sim.run();

  // Control-plane load: replay the generator over the UE-day HO counts.
  const core::ControlPlaneGenerator control{sim.country(), sim.activity()};
  telemetry::ControlEventCounter control_counter;
  for (const auto& row : ue_days.rows()) {
    control.generate_day(sim.population().ue(row.ue), row.day, row.handovers,
                         control_counter);
  }

  util::print_section(std::cout, "Control-plane load (all days)");
  util::TextTable cp{{"Event", "Count", "Per UE per day"}};
  const double ue_days_n = static_cast<double>(ue_days.rows().size());
  for (int t = 0; t < static_cast<int>(telemetry::kControlEventTypes); ++t) {
    const auto type = static_cast<telemetry::ControlEventType>(t);
    cp.add_row({std::string{telemetry::to_string(type)},
                std::to_string(control_counter.count(type)),
                util::TextTable::num(control_counter.count(type) / ue_days_n, 1)});
  }
  cp.add_row({"Handover", std::to_string(sim.records_emitted()),
              util::TextTable::num(sim.records_emitted() / ue_days_n, 1)});
  cp.print(std::cout);

  util::print_section(std::cout, "Handover health");
  util::TextTable hh{{"Metric", "Value"}};
  hh.add_row({"handovers", std::to_string(pingpong.total_handovers())});
  hh.add_row({"ping-pong rate", util::TextTable::pct(pingpong.ping_pong_rate(), 2)});
  hh.add_row({"wasted PP signaling",
              util::TextTable::num(pingpong.wasted_signaling_ms() / 1'000.0, 1) + " s"});
  hh.add_row({"mean interruption (success)",
              util::TextTable::num(qos.mean_interruption_success_ms(), 1) + " ms"});
  hh.add_row({"mean interruption (failure)",
              util::TextTable::num(qos.mean_interruption_failure_ms(), 1) + " ms"});
  hh.add_row({"user-plane loss",
              util::TextTable::num(qos.total_lost_mbytes() / 1'024.0, 2) + " GB"});
  hh.add_row({"loss from vertical HOs",
              util::TextTable::pct(qos.vertical_share_of_loss(), 1)});
  hh.print(std::cout);

  util::print_section(std::cout, "Top failure causes today");
  util::TextTable fc{{"Cause", "share of failures"}};
  for (std::size_t b = 0; b < telemetry::CauseAggregator::kBuckets; ++b) {
    const auto share = causes.daily_share(b);
    if (share.mean < 0.03) continue;
    fc.add_row({telemetry::CauseAggregator::bucket_label(b),
                util::TextTable::pct(share.mean, 1)});
  }
  fc.print(std::cout);

  // Regional core entity rollup.
  util::print_section(std::cout, "Core entities");
  util::TextTable ce{{"Region", "MME HOs", "MME HOF rate", "SGSN relocations",
                      "MSC SRVCC"}};
  for (const auto region : geo::kAllRegions) {
    const auto& mme = sim.core_network().mme(region);
    const auto& sgsn = sim.core_network().sgsn(region);
    const auto& msc = sim.core_network().msc(region);
    ce.add_row({std::string{geo::to_string(region)},
                std::to_string(mme.handovers.procedures),
                util::TextTable::pct(mme.handovers.failure_rate(), 2),
                std::to_string(sgsn.relocations.procedures),
                std::to_string(msc.srvcc.procedures)});
  }
  ce.print(std::cout);

  if (supervisor != nullptr) {
    const auto& summary = supervisor->summary();
    util::print_section(std::cout, "Supervision");
    util::TextTable sv{{"Metric", "Value"}};
    sv.add_row({"days supervised", std::to_string(summary.days)});
    sv.add_row({"degraded days", std::to_string(summary.degraded_days)});
    sv.add_row({"shard attempts", std::to_string(summary.shard_attempts)});
    sv.add_row({"retries", std::to_string(summary.retries)});
    sv.add_row({"watchdog timeouts", std::to_string(summary.timeouts)});
    sv.add_row({"transient failures", std::to_string(summary.transient_failures)});
    sv.add_row({"permanent failures", std::to_string(summary.permanent_failures)});
    sv.add_row({"bisection probes", std::to_string(summary.bisection_probes)});
    sv.add_row({"quarantined UEs", std::to_string(sim.quarantined_ues().size())});
    sv.print(std::cout);
    if (fault_rate > 0.0) {
      std::cout << "\nEvery number above the Supervision section is identical to\n"
                   "an unsupervised, fault-free run: degradation is absorbed by\n"
                   "retries and quarantine, never by the telemetry.\n";
    }
  }

  if (monitor != nullptr) {
    const obs::StudyMonitor::Snapshot snap = monitor->snapshot();
    util::print_section(std::cout, "Observability");
    util::TextTable ob{{"Metric", "Value"}};
    ob.add_row({"days simulated", std::to_string(snap.days)});
    ob.add_row({"UE-days", std::to_string(snap.ue_days)});
    ob.add_row({"records", std::to_string(snap.records)});
    ob.add_row({"UE-days/sec", util::TextTable::num(snap.ue_days_per_sec, 0)});
    ob.add_row({"retries", std::to_string(snap.retries)});
    ob.add_row({"quarantine size", std::to_string(
                    static_cast<std::uint64_t>(snap.quarantine_size))});
    if (const auto* h = snap.metrics.find_histogram("tl_sim_day_seconds")) {
      ob.add_row({"day wall p50", util::TextTable::num(h->quantile(0.5), 3) + " s"});
      ob.add_row({"day wall p99", util::TextTable::num(h->quantile(0.99), 3) + " s"});
    }
    ob.print(std::cout);
    monitor->write_prometheus_file(metrics_out);
    std::cout << "\nWrote Prometheus exposition to " << metrics_out << "\n";
  }
  return 0;
}
