// Incident drill — scripts a canned fault scenario against one study day
// and reports before/during/after handover health, the shape a NOC would
// watch during a real sector outage plus vendor bug wave. Demonstrates the
// fault-injection subsystem end to end: scenario building, schedule
// installation, recovery modeling and the incident-window aggregator.
//
//   $ incident_drill [scale] [seed] [--storm]
//
// --storm runs the drill day under the StudySupervisor with an in-process
// task-fault storm on top of the RAN incident: shard attempts randomly
// throw, hit transient EIOs, or stall, and the supervisor's retries keep
// the drill's telemetry identical while it reports what the storm cost.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/simulator.hpp"
#include "faults/scenarios.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/task_fault_injector.hpp"
#include "telemetry/aggregates.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

[[noreturn]] static void usage(const char* argv0, const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: " << argv0 << " [scale] [seed] [--storm]\n"
            << "  scale (0, 1]  deployment scale factor\n"
            << "  seed  uint64  simulation seed\n";
  std::exit(2);
}

int main(int argc, char** argv) {
  using namespace tl;
  using Phase = telemetry::IncidentWindowAggregator::Phase;

  bool storm = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--storm") == 0) {
      storm = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 2) usage(argv[0], "too many positional arguments");
  core::StudyConfig config = core::StudyConfig::bench_scale();
  config.scale = 0.01;
  config.seed = 42;
  if (!positional.empty()) {
    const auto scale = util::parse_double(positional[0], 1e-6, 1.0);
    if (!scale) usage(argv[0], std::string{"bad scale: "} + positional[0]);
    config.scale = *scale;
  }
  if (positional.size() > 1) {
    const auto seed = util::parse_uint(positional[1]);
    if (!seed) usage(argv[0], std::string{"bad seed: "} + positional[1]);
    config.seed = *seed;
  }
  config.days = 1;
  config.finalize();
  config.population.count = 20'000;
  config.recovery.enabled = true;  // UEs re-attempt after HOFs during the drill

  // Baseline pass: find the busiest sector so the drill hits where it hurts.
  std::cout << "Baseline day (no faults)...\n";
  core::Simulator baseline{config};
  const auto n_sectors = baseline.deployment().sectors().size();
  const auto window_start = faults::at_hour(0, 10.0);
  const auto window_end = faults::at_hour(0, 14.0);
  telemetry::IncidentWindowAggregator before{window_start, window_end, n_sectors};
  baseline.add_sink(&before);
  baseline.run();

  topology::SectorId victim = 0;
  std::uint64_t busiest = 0;
  for (topology::SectorId s = 0; s < n_sectors; ++s) {
    const std::uint64_t total = before.targeting(s, Phase::kBefore) +
                                before.targeting(s, Phase::kDuring) +
                                before.targeting(s, Phase::kAfter);
    if (total > busiest) {
      busiest = total;
      victim = s;
    }
  }
  const auto& victim_sector = baseline.deployment().sectors()[victim];

  // The drill: take the busiest sector off-air for the window, and let a
  // vendor bug wave degrade its vendor's fleet for the same hours.
  faults::Scenario drill = faults::single_sector_drill(victim, 0, 10.0, 14.0);
  drill.add(faults::vendor_bug_wave(victim_sector.vendor, window_start, window_end, 8.0));
  faults::FaultSchedule schedule;
  drill.install(schedule);

  std::cout << "Drill day: sector " << victim << " off-air 10:00-14:00, vendor "
            << topology::to_string(victim_sector.vendor) << " bug wave x8"
            << (storm ? ", supervised task-fault storm" : "") << "...\n";
  core::Simulator sim{config};
  sim.set_fault_schedule(&schedule);

  // --storm: the RAN incident above attacks the modeled network; this
  // attacks the pipeline running the model. Both at once is the realistic
  // bad day, and the drill tables must not change.
  supervise::TaskFaultConfig storm_cfg;
  storm_cfg.seed = config.seed ^ 0x57032;
  storm_cfg.throw_rate = 0.05;
  storm_cfg.io_error_rate = 0.05;
  storm_cfg.slow_rate = 0.05;
  storm_cfg.slow_ms = 2;
  const supervise::TaskFaultInjector injector{storm_cfg};
  supervise::SupervisorOptions sup_opt;
  sup_opt.shard_deadline_ms = 10'000;
  sup_opt.injector = &injector;
  supervise::StudySupervisor supervisor{sup_opt};
  if (storm) sim.set_supervisor(&supervisor);

  telemetry::IncidentWindowAggregator during{window_start, window_end, n_sectors};
  sim.add_sink(&during);
  sim.run();

  const char* phase_names[] = {"before (00-10h)", "during (10-14h)", "after (14-24h)"};
  const Phase phases[] = {Phase::kBefore, Phase::kDuring, Phase::kAfter};

  util::print_section(std::cout, "National HO health around the incident window");
  util::TextTable nat{{"Phase", "HOs (baseline)", "HOF (baseline)", "HOs (drill)",
                       "HOF (drill)"}};
  for (int p = 0; p < 3; ++p) {
    const auto& b = before.national(phases[p]);
    const auto& d = during.national(phases[p]);
    nat.add_row({phase_names[p], std::to_string(b.handovers),
                 util::TextTable::pct(b.hof_rate(), 2), std::to_string(d.handovers),
                 util::TextTable::pct(d.hof_rate(), 2)});
  }
  nat.print(std::cout);

  util::print_section(std::cout, "Victim sector (HOs targeting it)");
  util::TextTable vic{{"Phase", "baseline", "drill"}};
  for (int p = 0; p < 3; ++p) {
    vic.add_row({phase_names[p], std::to_string(before.targeting(victim, phases[p])),
                 std::to_string(during.targeting(victim, phases[p]))});
  }
  vic.print(std::cout);

  util::print_section(std::cout, "Victim sector as HO source");
  util::TextTable src{{"Phase", "HOs (drill)", "HOF (drill)"}};
  for (int p = 0; p < 3; ++p) {
    const auto& t = during.sourced_at(victim, phases[p]);
    src.add_row({phase_names[p], std::to_string(t.handovers),
                 util::TextTable::pct(t.hof_rate(), 2)});
  }
  src.print(std::cout);

  if (storm) {
    const auto& summary = supervisor.summary();
    util::print_section(std::cout, "Supervision (task-fault storm)");
    util::TextTable sv{{"Metric", "Value"}};
    sv.add_row({"shard attempts", std::to_string(summary.shard_attempts)});
    sv.add_row({"retries", std::to_string(summary.retries)});
    sv.add_row({"transient failures", std::to_string(summary.transient_failures)});
    sv.add_row({"watchdog timeouts", std::to_string(summary.timeouts)});
    sv.add_row({"quarantined UEs", std::to_string(sim.quarantined_ues().size())});
    sv.print(std::cout);
  }

  std::cout << "\nThe during-window column should read zero for the victim and the\n"
               "national drill HOF should spike inside the window only — injected\n"
               "incidents flow through the same records as organic failures.\n";
  return 0;
}
