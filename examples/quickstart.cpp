// Quickstart: build a scaled country, run a few study days, and print the
// headline statistics a TelcoLens user starts from.
//
//   $ quickstart [scale] [days] [seed] [--threads N]
//
// Demonstrates the core public API: StudyConfig -> Simulator -> sinks ->
// aggregate readouts. --threads N runs each day on N workers (0 = all
// hardware threads); the printed numbers are identical at any count.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: " << argv0 << " [scale] [days] [seed] [--threads N]\n"
            << "  scale      (0, 1]   deployment scale factor\n"
            << "  days       1..366   study days to simulate\n"
            << "  seed       uint64   simulation seed\n"
            << "  --threads  0..1024  workers per day (0 = all hardware)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  core::StudyConfig config = core::StudyConfig::bench_scale();
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const auto threads = util::parse_uint(argv[++i], 0, 1024);
      if (!threads) usage(argv[0], std::string{"bad --threads: "} + argv[i]);
      config.threads = static_cast<unsigned>(*threads);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) {
    const auto scale = util::parse_double(positional[0], 1e-6, 1.0);
    if (!scale) usage(argv[0], std::string{"bad scale: "} + positional[0]);
    config.scale = *scale;
  }
  if (positional.size() > 1) {
    const auto days = util::parse_uint(positional[1], 1, 366);
    if (!days) usage(argv[0], std::string{"bad days: "} + positional[1]);
    config.days = static_cast<int>(*days);
  }
  if (positional.size() > 2) {
    const auto seed = util::parse_uint(positional[2]);
    if (!seed) usage(argv[0], std::string{"bad seed: "} + positional[2]);
    config.seed = *seed;
  }
  config.finalize();
  config.population.count = std::min<std::uint32_t>(config.population.count, 40'000);

  std::cout << "Building country and deployment (scale=" << config.scale
            << ", days=" << config.days << ")...\n";
  core::Simulator sim{config};

  telemetry::TypeMixAggregator mix{config.days};
  telemetry::DurationAggregator durations;
  telemetry::DistrictAggregator districts{sim.country().districts().size(),
                                          sim.catalog().manufacturers().size()};
  sim.add_sink(&mix);
  sim.add_sink(&durations);
  sim.add_sink(&districts);

  std::cout << "Simulating...\n";
  sim.run();

  const auto stats = core::dataset_stats(sim, sim.records_emitted());
  util::print_section(std::cout, "Dataset statistics (Table 1 analog)");
  util::TextTable t1{{"Feature", "Configured", "Full-scale equivalent"}};
  t1.add_row({"Districts", std::to_string(stats.districts), std::to_string(stats.districts)});
  t1.add_row({"Cell sites", std::to_string(stats.cell_sites),
              util::TextTable::num(stats.full_scale_sites, 0)});
  t1.add_row({"Radio sectors", std::to_string(stats.radio_sectors),
              util::TextTable::num(stats.full_scale_sectors, 0)});
  t1.add_row({"UEs measured", std::to_string(stats.ues_measured),
              util::TextTable::num(stats.full_scale_ues, 0)});
  t1.add_row({"Daily handovers", util::TextTable::num(stats.daily_handovers, 0),
              util::TextTable::num(stats.full_scale_daily_handovers, 0)});
  t1.print(std::cout);

  util::print_section(std::cout, "HO type mix (Table 2 analog)");
  util::TextTable t2{{"Device type", "Intra 4G/5G-NSA", "to 3G", "to 2G"}};
  for (const auto type : devices::kAllDeviceTypes) {
    const double total = static_cast<double>(mix.total());
    t2.add_row({std::string{devices::to_string(type)},
                util::TextTable::pct(mix.count(type, topology::ObservedRat::kG45Nsa) / total),
                util::TextTable::pct(mix.count(type, topology::ObservedRat::kG3) / total),
                util::TextTable::pct(mix.count(type, topology::ObservedRat::kG2) / total)});
  }
  t2.print(std::cout);

  util::print_section(std::cout, "HO duration (Fig. 8 analog)");
  util::TextTable t3{{"HO type", "median (ms)", "p95 (ms)"}};
  for (const auto rat : {topology::ObservedRat::kG45Nsa, topology::ObservedRat::kG3,
                         topology::ObservedRat::kG2}) {
    const auto& r = durations.durations(rat);
    if (r.values().empty()) continue;
    t3.add_row({std::string{topology::to_string(rat)},
                util::TextTable::num(r.quantile(0.50), 0),
                util::TextTable::num(r.quantile(0.95), 0)});
  }
  t3.print(std::cout);

  const auto density = core::district_ho_density(sim, districts);
  util::print_section(std::cout, "Geodemographics (Fig. 6 analog)");
  std::cout << "Pearson(HOs/km2, residents/km2) = "
            << util::TextTable::num(density.pearson, 3) << "\n"
            << "HOs per km2: max " << util::TextTable::num(density.max_hos_per_km2, 1)
            << ", mean " << util::TextTable::num(density.mean_hos_per_km2, 1) << ", min "
            << util::TextTable::num(density.min_hos_per_km2, 2) << "\n";

  std::cout << "\nDone: " << sim.records_emitted() << " handover records streamed.\n";
  return 0;
}
