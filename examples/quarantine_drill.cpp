// Quarantine drill — the always-on operations story end to end: a multi-day
// supervised study runs under a seeded in-process fault storm (task throws,
// transient EIOs, hangs, slowdowns) on top of a set of poison UEs that fail
// deterministically on every attempt. The supervisor retries the transient
// failures with backoff, cancels hung shards via watchdog deadlines, bisects
// the deterministic failures down to the offending UEs and quarantines them
// — and the drill then proves the degradation was lossless by re-running
// serially, uninjected, over the surviving population and comparing record
// checksums.
//
//   $ quarantine_drill [scale] [days] [--threads N] [--poison F] [--storm F]
//
// --poison F   fraction of UEs that are deterministically pathological
// --storm F    per-attempt task fault probability (split across fault kinds)

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/task_fault_injector.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/sinks.hpp"
#include "util/cli.hpp"
#include "util/crc32c.hpp"
#include "util/table.hpp"

namespace {

/// CRC32C over the wire encoding of the full record stream: a compact
/// equality oracle for "same bytes, same order".
class ChecksumSink final : public tl::telemetry::RecordSink {
 public:
  void consume(const tl::telemetry::HandoverRecord& record) override {
    scratch_.clear();
    tl::telemetry::RecordLog::encode_record(record, scratch_);
    crc_.update(scratch_.data(), scratch_.size());
    ++records_;
  }
  std::uint32_t value() const noexcept { return crc_.value(); }
  std::uint64_t records() const noexcept { return records_; }

 private:
  tl::util::Crc32c crc_;
  std::uint64_t records_ = 0;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace

[[noreturn]] static void usage(const char* argv0, const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: " << argv0
            << " [scale] [days] [--threads N] [--poison F] [--storm F]\n"
            << "  scale     (0, 1]   deployment scale factor\n"
            << "  days      1..366   study days to simulate\n"
            << "  --threads 0..1024  workers per day (0 = all hardware)\n"
            << "  --poison  [0, 1]   fraction of UEs seeded as poison\n"
            << "  --storm   [0, 1]   per-attempt transient-fault probability\n";
  std::exit(2);
}

int main(int argc, char** argv) {
  using namespace tl;

  core::StudyConfig config = core::StudyConfig::test_scale();
  double poison_fraction = 0.002;
  double storm_rate = 0.12;
  unsigned threads = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_uint(argv[++i], 0, 1024);
      if (!parsed) usage(argv[0], std::string{"bad --threads: "} + argv[i]);
      threads = static_cast<unsigned>(*parsed);
    } else if (std::strcmp(argv[i], "--poison") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_double(argv[++i], 0.0, 1.0);
      if (!parsed) usage(argv[0], std::string{"bad --poison: "} + argv[i]);
      poison_fraction = *parsed;
    } else if (std::strcmp(argv[i], "--storm") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_double(argv[++i], 0.0, 1.0);
      if (!parsed) usage(argv[0], std::string{"bad --storm: "} + argv[i]);
      storm_rate = *parsed;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 2) usage(argv[0], "too many positional arguments");
  if (!positional.empty()) {
    const auto scale = util::parse_double(positional[0], 1e-6, 1.0);
    if (!scale) usage(argv[0], std::string{"bad scale: "} + positional[0]);
    config.scale = *scale;
  }
  config.days = 2;
  if (positional.size() > 1) {
    const auto days = util::parse_uint(positional[1], 1, 366);
    if (!days) usage(argv[0], std::string{"bad days: "} + positional[1]);
    config.days = static_cast<int>(*days);
  }
  config.finalize();
  config.population.count = 4'000;

  supervise::TaskFaultConfig storm;
  storm.seed = config.seed ^ 0xD811;
  storm.throw_rate = storm_rate / 4;
  storm.io_error_rate = storm_rate / 4;
  storm.hang_rate = storm_rate / 4;
  storm.slow_rate = storm_rate / 4;
  storm.slow_ms = 2;
  storm.hang_cap_ms = 30'000;  // hangs end only when the watchdog fires
  storm.poison_ue_fraction = poison_fraction;
  storm.poison_hang_fraction = 0.25;
  const supervise::TaskFaultInjector injector{storm};

  supervise::SupervisorOptions sup_opt;
  sup_opt.threads = threads;
  sup_opt.shard_deadline_ms = 2'000;
  sup_opt.injector = &injector;
  sup_opt.on_quarantine = [](const supervise::QuarantinedItem& q) {
    std::cout << "  quarantined UE " << q.item << " (day " << q.day << ", shard "
              << q.shard << "): " << q.status.to_string() << "\n";
  };
  supervise::StudySupervisor supervisor{sup_opt};

  std::cout << "Supervised study: " << config.days << " day(s), "
            << config.population.count << " UEs, task fault rate " << storm_rate
            << ", poison fraction " << poison_fraction << "...\n";
  ChecksumSink storm_crc;
  core::Simulator sim{config};
  sim.set_supervisor(&supervisor);
  sim.add_sink(&storm_crc);
  sim.run();
  sim.remove_sink(&storm_crc);
  const std::vector<devices::UeId> quarantined = sim.quarantined_ues();

  const auto& summary = supervisor.summary();
  util::print_section(std::cout, "Supervision summary");
  util::TextTable st{{"Metric", "Value"}};
  st.add_row({"days", std::to_string(summary.days)});
  st.add_row({"degraded days", std::to_string(summary.degraded_days)});
  st.add_row({"shard attempts", std::to_string(summary.shard_attempts)});
  st.add_row({"retries", std::to_string(summary.retries)});
  st.add_row({"watchdog timeouts", std::to_string(summary.timeouts)});
  st.add_row({"transient failures", std::to_string(summary.transient_failures)});
  st.add_row({"permanent failures", std::to_string(summary.permanent_failures)});
  st.add_row({"bisection probes", std::to_string(summary.bisection_probes)});
  st.add_row({"quarantined UEs", std::to_string(quarantined.size())});
  st.print(std::cout);

  if (!summary.quarantine.items.empty()) {
    util::print_section(std::cout, "Quarantine report");
    util::TextTable qt{{"UE", "Day", "Shard", "Verdict", "Shard attempts"}};
    for (const auto& q : summary.quarantine.items) {
      qt.add_row({std::to_string(q.item), std::to_string(q.day),
                  std::to_string(q.shard), std::string{to_string(q.status.code())},
                  std::to_string(q.trail.size())});
    }
    qt.print(std::cout);
  }

  // The lossless-degradation check: a serial, unsupervised, uninjected run
  // over the surviving population must reproduce the storm's byte stream.
  std::cout << "\nVerifying against a clean serial run over the survivors...\n";
  ChecksumSink clean_crc;
  core::Simulator oracle{config};
  oracle.set_quarantined_ues(quarantined);
  oracle.add_sink(&clean_crc);
  oracle.run();

  util::print_section(std::cout, "Byte-determinism verdict");
  util::TextTable vt{{"Run", "Records", "Stream CRC32C"}};
  vt.add_row({"supervised + fault storm", std::to_string(storm_crc.records()),
              std::to_string(storm_crc.value())});
  vt.add_row({"clean serial over survivors", std::to_string(clean_crc.records()),
              std::to_string(clean_crc.value())});
  vt.print(std::cout);

  if (storm_crc.value() != clean_crc.value() ||
      storm_crc.records() != clean_crc.records()) {
    std::cout << "\nMISMATCH — supervised degradation altered the stream.\n";
    return 1;
  }
  std::cout << "\nIdentical: the storm cost retries and " << quarantined.size()
            << " quarantined UE(s), not correctness.\n";
  return 0;
}
