// A/B policy study — the paper's rural peak-hour HOF spike, attacked with
// the load-balancing policy. Runs the calibrated baseline (arm A) against
// LoadBalancingPolicy (arm B) on the same seed/topology/population, then
// prints the ExperimentReport side by side and a verdict on the rural
// peak-hour failure rate (the hour is chosen from arm A's HO volume so both
// arms are compared over the same hour).
//
//   $ ab_study [scale] [days] [--threads N] [--seed S] [--serialize PATH]
//
// Every reported number is deterministic: same seed → same report, at any
// thread count. --serialize writes the byte-stable machine form (CI runs
// the study twice and diffs the two files).

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "experiment/ab_experiment.hpp"
#include "util/cli.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: " << argv0
            << " [scale] [days] [--threads N] [--seed S] [--serialize PATH]\n"
            << "  scale        (0, 1]   deployment scale factor\n"
            << "  days         1..366   study days to simulate\n"
            << "  --threads    0..1024  workers per day (0 = all hardware)\n"
            << "  --seed       any      world seed shared by both arms\n"
            << "  --serialize  PATH     also write the byte-stable report form\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tl;

  experiment::ExperimentConfig cfg;
  cfg.study = core::StudyConfig::test_scale();
  cfg.study.threads = 0;
  cfg.policy_a.kind = policy::PolicyKind::kCalibratedBaseline;
  cfg.policy_b.kind = policy::PolicyKind::kLoadBalancing;
  cfg.label_a = "baseline";
  cfg.label_b = "load-balancing";

  std::string serialize_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const auto threads = util::parse_uint(argv[++i], 0, 1024);
      if (!threads) usage(argv[0], std::string{"bad --threads: "} + argv[i]);
      cfg.study.threads = static_cast<unsigned>(*threads);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto seed = util::parse_uint(argv[++i], 0, UINT64_MAX);
      if (!seed) usage(argv[0], std::string{"bad --seed: "} + argv[i]);
      cfg.study.seed = *seed;
    } else if (std::strcmp(argv[i], "--serialize") == 0 && i + 1 < argc) {
      serialize_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 2) usage(argv[0], "too many positional arguments");
  if (positional.size() > 0) {
    const auto scale = util::parse_double(positional[0], 1e-6, 1.0);
    if (!scale) usage(argv[0], std::string{"bad scale: "} + positional[0]);
    cfg.study.scale = *scale;
  }
  if (positional.size() > 1) {
    const auto days = util::parse_uint(positional[1], 1, 366);
    if (!days) usage(argv[0], std::string{"bad days: "} + positional[1]);
    cfg.study.days = static_cast<int>(*days);
  }
  // finalize() re-derives population.count from scale; keep the test-scale
  // population when the caller didn't ask for a bigger world.
  const auto default_population = cfg.study.population.count;
  cfg.study.finalize();
  if (positional.empty()) cfg.study.population.count = default_population;

  std::cout << "A/B study: " << cfg.label_a << " vs " << cfg.label_b
            << "  (seed " << cfg.study.seed << ", " << cfg.study.days
            << " day(s), scale " << cfg.study.scale << ")\n";

  experiment::AbExperiment exp{cfg};
  const experiment::ExperimentReport report = exp.run();
  report.print(std::cout);

  // The verdict the experiment exists for: does load-aware target selection
  // shrink the rural peak-hour HOF spike?
  const auto rural = report.peak_hour_diff(geo::AreaType::kRural);
  std::cout << "\nVerdict: rural peak-hour (" << rural.hour << ":00) HOF rate ";
  if (rural.b_rate < rural.a_rate) {
    std::cout << "shrinks under " << cfg.label_b << " (";
  } else if (rural.b_rate > rural.a_rate) {
    std::cout << "grows under " << cfg.label_b << " (";
  } else {
    std::cout << "is unchanged (";
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.5f -> %.5f, %+.1f%%", rural.a_rate,
                rural.b_rate, rural.delta_pct);
  std::cout << buf << "); ->3G fallback share "
            << report.a.share_to(topology::ObservedRat::kG3) << " -> "
            << report.b.share_to(topology::ObservedRat::kG3) << "\n";

  if (!serialize_path.empty()) {
    std::ofstream out{serialize_path, std::ios::binary | std::ios::trunc};
    if (!out) {
      std::cerr << "error: cannot open " << serialize_path << "\n";
      return 1;
    }
    report.serialize(out);
    std::cout << "Wrote serialized report to " << serialize_path << "\n";
  }
  return 0;
}
